package shard

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/sched"
)

// lcg is the deterministic generator every workload builder here uses.
type lcg uint64

func (r *lcg) next(k int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int((uint64(*r) >> 33) % uint64(k))
}

func mkStreams(seed uint64, m int, load float64) []sched.Stream {
	rng := lcg(seed)
	fps := []int64{5, 6, 10, 15, 30}
	base := make([]sched.Stream, m)
	for i := range base {
		p := sched.RatFromFPS(fps[rng.next(len(fps))])
		base[i] = sched.Stream{
			Video:  i,
			Period: p,
			Proc:   p.Float() * load * (0.2 + 0.8*float64(rng.next(100))/100),
			Bits:   1e6 * (1 + float64(rng.next(20))),
		}
	}
	return sched.SplitHighRate(base)
}

func mkServers(seed uint64, n int, uniform bool) []cluster.Server {
	rng := lcg(seed)
	servers := make([]cluster.Server, n)
	for j := range servers {
		up := 20e6
		if !uniform {
			up = 10e6 * float64(1+rng.next(5))
		}
		servers[j] = cluster.Server{Name: fmt.Sprintf("s%d", j), Uplink: up}
	}
	return servers
}

func TestPartitionCoverageAndDeterminism(t *testing.T) {
	streams := mkStreams(7, 40, 0.3)
	for _, cells := range []int{1, 2, 3, 4, 7} {
		parts := Partition(streams, cells)
		if len(parts) != cells {
			t.Fatalf("cells=%d: got %d parts", cells, len(parts))
		}
		seen := make([]int, len(streams))
		videoCell := map[int]int{}
		for c, part := range parts {
			for _, i := range part {
				seen[i]++
				v := streams[i].Video
				if prev, ok := videoCell[v]; ok && prev != c {
					t.Fatalf("cells=%d: video %d split across cells %d and %d", cells, v, prev, c)
				}
				videoCell[v] = c
			}
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("cells=%d: stream %d appears %d times", cells, i, n)
			}
		}
		if again := Partition(streams, cells); !reflect.DeepEqual(parts, again) {
			t.Fatalf("cells=%d: partition is not deterministic", cells)
		}
	}
}

func TestPartitionVideosBalance(t *testing.T) {
	for _, tc := range []struct{ m, cells int }{{1, 4}, {5, 2}, {16, 4}, {100, 7}} {
		parts := PartitionVideos(tc.m, tc.cells)
		seen := make([]bool, tc.m)
		minLen, maxLen := tc.m+1, 0
		for _, part := range parts {
			if len(part) < minLen {
				minLen = len(part)
			}
			if len(part) > maxLen {
				maxLen = len(part)
			}
			for _, v := range part {
				if seen[v] {
					t.Fatalf("m=%d cells=%d: video %d duplicated", tc.m, tc.cells, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("m=%d cells=%d: video %d missing", tc.m, tc.cells, v)
			}
		}
		if maxLen-minLen > 1 {
			t.Fatalf("m=%d cells=%d: cell sizes range %d..%d", tc.m, tc.cells, minLen, maxLen)
		}
	}
}

// TestDyadicExactness pins the exact accumulator against big.Rat, including
// the budget boundary: a sum exactly equal to the budget fits, one ULP of
// the smallest contribution above it does not.
func TestDyadicExactness(t *testing.T) {
	var d dyadic
	var tmp big.Int
	ref := new(big.Rat)
	vals := []float64{1.0 / 3.0, 0.1, 2.5e-3, 1e-9, 0.031}
	for _, v := range vals {
		if !d.addFloat(v, &tmp) {
			t.Fatalf("addFloat(%v) rejected a finite value", v)
		}
		ref.Add(ref, new(big.Rat).SetFloat64(v))
	}
	got := new(big.Rat).SetFrac(new(big.Int).Set(&d.num), new(big.Int).Lsh(big.NewInt(1), d.shift))
	if got.Cmp(ref) != 0 {
		t.Fatalf("dyadic sum %v, big.Rat reference %v", got, ref)
	}

	// Boundary: budget exactly equal to the sum of two halves.
	var e dyadic
	e.addFloat(0.25, &tmp)
	e.addFloat(0.25, &tmp)
	var sc fitScratch
	if !e.withinBudget(sched.Rational{Num: 1, Den: 2}, &sc) {
		t.Fatal("sum exactly at budget must fit")
	}
	e.addFloat(5e-324, &tmp) // smallest positive subnormal
	if e.withinBudget(sched.Rational{Num: 1, Den: 2}, &sc) {
		t.Fatal("one subnormal above budget must not fit")
	}
	if d.addFloat(math.NaN(), &tmp) {
		t.Fatal("addFloat must reject NaN")
	}
}

// claimOf builds a claim over the given streams for tests.
func claimOf(t *testing.T, streams []sched.Stream, members []int, server int) Claim {
	t.Helper()
	var cl Claim
	var tmp big.Int
	cl.Server = server
	for _, i := range members {
		cl.Members = append(cl.Members, i)
		cl.GCD = sched.RatGCD(cl.GCD, streams[i].Period)
		if !cl.Sum.addFloat(streams[i].Proc, &tmp) {
			t.Fatalf("stream %d: non-finite proc", i)
		}
		cl.Bits += streams[i].Bits
	}
	return cl
}

func TestArbiterCommitAndConflict(t *testing.T) {
	// Two streams at 10 fps with proc 0.06 each: one fits a 0.1 s gcd
	// budget, two exactly fill 0.12 > 0.1 and must conflict.
	p := sched.RatFromFPS(10)
	streams := []sched.Stream{
		{Video: 0, Period: p, Proc: 0.06, Bits: 1e6},
		{Video: 1, Period: p, Proc: 0.06, Bits: 2e6},
	}
	a := NewArbiter(2, 100)
	a.SetUplinks([]float64{10e6, 10e6})

	first := Proposal{Cell: 0, Version: a.Version(), Claims: []Claim{claimOf(t, streams, []int{0}, 0)}}
	if ok, _ := a.Commit(&first); !ok {
		t.Fatal("first commit rejected")
	}
	if a.Version() != 101 || a.Commits() != 1 {
		t.Fatalf("version %d commits %d after one commit", a.Version(), a.Commits())
	}

	conflicting := Proposal{Cell: 1, Version: 100, Claims: []Claim{claimOf(t, streams, []int{1}, 0)}}
	ok, conflict := a.Commit(&conflicting)
	if ok || conflict != 0 {
		t.Fatalf("overfull commit: ok=%v conflict=%d, want rejection on server 0", ok, conflict)
	}
	if a.Version() != 101 {
		t.Fatal("rejected commit must not bump the version")
	}

	// The loser retries on the free server and commits.
	retry := Proposal{Cell: 1, Version: a.Version(), Claims: []Claim{claimOf(t, streams, []int{1}, 1)}}
	if ok, _ := a.Commit(&retry); !ok {
		t.Fatal("retry on a free server rejected")
	}
	// Accumulate the expectation the way the arbiter does (claim by claim)
	// so float associativity cannot fail the comparison.
	wantComm := 1e6 / 10e6
	wantComm += 2e6 / 10e6
	if a.CommLatency() != wantComm {
		t.Fatalf("comm latency %v, want %v", a.CommLatency(), wantComm)
	}

	// Duplicate servers within one proposal are a protocol violation.
	dup := Proposal{Cell: 2, Version: a.Version(), Claims: []Claim{
		claimOf(t, streams, []int{0}, 1), claimOf(t, streams, []int{1}, 1),
	}}
	if ok, _ := a.Commit(&dup); ok {
		t.Fatal("duplicate-server proposal committed")
	}
}

// TestArbiterMergesAcrossCells commits two different cells' groups onto one
// server and checks the merged plan keeps the exact union constraint.
func TestArbiterMergesAcrossCells(t *testing.T) {
	p30, p15 := sched.RatFromFPS(30), sched.RatFromFPS(15)
	streams := []sched.Stream{
		{Video: 0, Period: p30, Proc: 0.012},
		{Video: 1, Period: p15, Proc: 0.014},
	}
	a := NewArbiter(1, 0)
	a.SetUplinks([]float64{10e6})
	for cell := range streams {
		prop := Proposal{Cell: cell, Version: a.Version(), Claims: []Claim{claimOf(t, streams, []int{cell}, 0)}}
		if ok, _ := a.Commit(&prop); !ok {
			t.Fatalf("cell %d commit rejected", cell)
		}
	}
	plan := a.Plan(len(streams))
	if len(plan.Groups) != 1 || len(plan.Groups[0]) != 2 {
		t.Fatalf("expected one merged group of 2, got %+v", plan.Groups)
	}
	if !sched.CheckConst2(streams, plan.StreamServer, 1) {
		t.Fatal("merged placement violates exact Const2")
	}
	// 0.012+0.014 = 0.026 < gcd(1/30, 1/15) = 1/30 ≈ 0.0333: genuinely shared.
}

// clearTiming zeroes a Stats' wall-clock fields so deterministic solves can
// be compared with DeepEqual (the timings legitimately differ per run).
func clearTiming(st Stats) Stats {
	st.ProposeSeconds = 0
	st.CommitSeconds = 0
	return st
}

func TestPlannerShards1IsSerial(t *testing.T) {
	streams := mkStreams(11, 24, 0.1)
	servers := mkServers(3, 6, false)
	want, err := sched.ScheduleMasked(streams, servers, nil)
	if err != nil {
		t.Fatalf("serial solve failed: %v", err)
	}
	pl := New(Options{Shards: 1, Check: check.New(true, nil)})
	got, st, err := pl.Plan(streams, sched.NewSnapshot(0, servers, nil))
	if err != nil {
		t.Fatalf("planner failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Shards=1 diverged from serial:\n%+v\n%+v", got, want)
	}
	if st.Shards != 1 || st.FellBack {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestPlannerShardedFeasibleDeterministicSequentialEqual(t *testing.T) {
	streams := mkStreams(3, 48, 0.08)
	servers := mkServers(9, 12, false)
	snap := sched.NewSnapshot(5, servers, nil)
	for _, shards := range []int{2, 3, 4} {
		chk := check.New(true, nil)
		pl := New(Options{Shards: shards, Check: chk})
		plan, st, err := pl.Plan(streams, snap)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i, j := range plan.StreamServer {
			if j < 0 || j >= len(servers) {
				t.Fatalf("shards=%d: stream %d unplaced (server %d)", shards, i, j)
			}
		}
		if !sched.CheckConst1(streams, plan.StreamServer, len(servers)) ||
			!sched.CheckConst2(streams, plan.StreamServer, len(servers)) {
			t.Fatalf("shards=%d: committed plan violates exact feasibility", shards)
		}
		if !st.FellBack && st.Commits == 0 {
			t.Fatalf("shards=%d: no commits and no fallback: %+v", shards, st)
		}

		again, st2, err := New(Options{Shards: shards}).Plan(streams, snap)
		if err != nil {
			t.Fatalf("shards=%d second run: %v", shards, err)
		}
		if !reflect.DeepEqual(plan, again) || !reflect.DeepEqual(clearTiming(st), clearTiming(st2)) {
			t.Fatalf("shards=%d: plan not deterministic across runs", shards)
		}

		seq, stSeq, err := New(Options{Shards: shards, Sequential: true}).Plan(streams, snap)
		if err != nil {
			t.Fatalf("shards=%d sequential: %v", shards, err)
		}
		if !reflect.DeepEqual(plan, seq) {
			t.Fatalf("shards=%d: parallel and sequential plans diverge:\n%+v\n%+v", shards, plan, seq)
		}
		if st.Conflicts != stSeq.Conflicts || st.Commits != stSeq.Commits || st.Rounds != stSeq.Rounds {
			t.Fatalf("shards=%d: parallel stats %+v vs sequential %+v", shards, st, stSeq)
		}
	}
}

// TestPlannerUniformUplinkCommInvariant: with uniform uplinks the total
// communication latency is placement-independent (Σ bits / u), so the
// sharded plan must match the serial scheduler's exactly.
func TestPlannerUniformUplinkCommInvariant(t *testing.T) {
	streams := mkStreams(21, 32, 0.08)
	servers := mkServers(0, 8, true)
	serial, err := sched.ScheduleMasked(streams, servers, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	plan, _, err := New(Options{Shards: 4}).Plan(streams, sched.NewSnapshot(0, servers, nil))
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	// Equal as exact sums; float accumulation order differs between the
	// serial solve and per-claim commits, so compare to re-association
	// tolerance rather than bit equality.
	if d := math.Abs(plan.CommLatency - serial.CommLatency); d > 1e-9*math.Abs(serial.CommLatency) {
		t.Fatalf("uniform-uplink comm latency %v, serial %v", plan.CommLatency, serial.CommLatency)
	}
}

func TestPlannerRespectsMask(t *testing.T) {
	streams := mkStreams(9, 20, 0.2)
	servers := mkServers(2, 6, false)
	healthy := []bool{true, false, true, true, false, true}
	plan, _, err := New(Options{Shards: 3, Check: check.New(true, nil)}).
		Plan(streams, sched.NewSnapshot(1, servers, healthy))
	if err != nil {
		t.Fatalf("masked sharded solve: %v", err)
	}
	for i, j := range plan.StreamServer {
		if j < 0 || !healthy[j] {
			t.Fatalf("stream %d on down/unplaced server %d", i, j)
		}
	}
}

func TestPlannerInfeasiblePropagates(t *testing.T) {
	// Overload: heavy procs that cannot fit one tiny server.
	p := sched.RatFromFPS(30)
	var streams []sched.Stream
	for i := 0; i < 8; i++ {
		streams = append(streams, sched.Stream{Video: i, Period: p, Proc: 0.03, Bits: 1e6})
	}
	servers := mkServers(1, 1, true)
	_, st, err := New(Options{Shards: 2}).Plan(streams, sched.NewSnapshot(0, servers, nil))
	if err == nil {
		t.Fatal("overloaded cluster must be infeasible")
	}
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if !st.FellBack {
		t.Fatalf("infeasibility must be decided by the serial fallback: %+v", st)
	}
}

// TestPlannerStrictAuditCatchesViolation feeds the checker a corrupted plan
// to prove the strict audit path is live end to end.
func TestVerifyPlanCatchesCorruption(t *testing.T) {
	streams := mkStreams(4, 12, 0.2)
	servers := mkServers(4, 4, true)
	plan, err := sched.ScheduleMasked(streams, servers, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	chk := check.New(true, nil)
	if err := chk.VerifyPlan(streams, plan, len(servers), nil); err != nil {
		t.Fatalf("valid plan flagged: %v", err)
	}
	// Corrupt: point one stream's server somewhere its group is not.
	bad := plan
	bad.StreamServer = append([]int(nil), plan.StreamServer...)
	bad.StreamServer[0] = (plan.StreamServer[0] + 1) % len(servers)
	if err := chk.VerifyPlan(streams, bad, len(servers), nil); err == nil {
		t.Fatal("corrupted plan passed VerifyPlan")
	}
}

func TestPlannerReuseAcrossSolves(t *testing.T) {
	pl := New(Options{Shards: 3})
	servers := mkServers(5, 10, false)
	var prev sched.Plan
	for round := 0; round < 3; round++ {
		streams := mkStreams(uint64(100+round), 36, 0.25)
		plan, _, err := pl.Plan(streams, sched.NewSnapshot(uint64(round), servers, nil))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fresh, _, err := New(Options{Shards: 3}).Plan(streams, sched.NewSnapshot(uint64(round), servers, nil))
		if err != nil {
			t.Fatalf("round %d fresh: %v", round, err)
		}
		if !reflect.DeepEqual(plan, fresh) {
			t.Fatalf("round %d: reused planner diverged from fresh planner", round)
		}
		prev = plan
	}
	_ = prev
}
