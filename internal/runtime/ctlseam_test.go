package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eva"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/videosim"
)

// These tests cover the control-plane seams the distributed runtime plugs
// into — HealthSource, OpSource, the abandoned-decide accounting, and the
// deterministic retry jitter — entirely in-process, with fakes standing in
// for the wire.

// TestAbandonedDecideNeverInstalls is the regression for the abandonment
// contract: a decide attempt that outlives its deadline is counted in
// runtime_decide_abandoned_total and its eventual result — even a
// perfectly valid decision — lands in a buffered channel nobody reads, so
// it can never install. The hung attempts here finish mid-run with a
// distinctive all-on-server-0 placement; every epoch must keep the
// original spread placement.
func TestAbandonedDecideNeverInstalls(t *testing.T) {
	sys := testSys(4, 3)
	var calls atomic.Int32
	release := make(chan struct{})
	var releaseOnce sync.Once
	defer releaseOnce.Do(func() { close(release) })
	var hung sync.WaitGroup
	hung.Add(2)
	s := SchedulerFunc(func(ctx context.Context, sy *objective.System, epoch int) (eva.Decision, error) {
		switch calls.Add(1) {
		case 1:
			return zeroJitterScheduler().Decide(ctx, sy, epoch)
		case 2, 3:
			// Epoch 2's two attempts: hang past the deadline, then return a
			// valid but unmistakable decision (everything on server 0).
			defer hung.Done()
			<-release
			d, err := zeroJitterScheduler().Decide(ctx, sy, epoch)
			if err == nil {
				d.Assign = make([]int, len(d.Streams))
			}
			return d, err
		default:
			// Epoch 4's replan: let the abandoned attempts finish first so
			// their late writes land while the run is still going, then
			// hand back the ordinary plan. The wait is microseconds — far
			// inside this attempt's own deadline.
			releaseOnce.Do(func() { close(release) })
			hung.Wait()
			time.Sleep(2 * time.Millisecond)
			return zeroJitterScheduler().Decide(ctx, sy, epoch)
		}
	})
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	c := controller(sys, s, 2)
	c.Obs = rec
	c.Opt.DecideTimeout = 20 * time.Millisecond
	c.Opt.DecideRetries = 1
	c.Opt.RetryBackoff = time.Millisecond

	trace, err := c.Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 6 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	for _, r := range trace.Reports {
		// The late decision's fingerprint is every stream on server 0; no
		// installed epoch may ever show it.
		total := streamSum(r)
		if total == 0 || r.ServerStreams[0] == total {
			t.Fatalf("epoch %d: placement %v matches the abandoned decision", r.Epoch, r.ServerStreams)
		}
	}
	if r := trace.Reports[2]; !r.ReplanFailed || r.DecideAttempts != 2 {
		t.Fatalf("epoch 2: replan_failed=%v attempts=%d", r.ReplanFailed, r.DecideAttempts)
	}
	if r := trace.Reports[4]; !r.Replanned {
		t.Fatalf("epoch 4 should replan cleanly after release: %+v", r)
	}
	if got := calls.Load(); got < 4 {
		t.Fatalf("scheduler calls = %d, want >= 4", got)
	}
	reg := rec.Registry()
	if v := reg.Counter("runtime_decide_abandoned_total").Value(); v != 2 {
		t.Fatalf("abandoned = %d, want 2", v)
	}
	if v := reg.Counter("runtime_decide_timeouts_total").Value(); v != 2 {
		t.Fatalf("timeouts = %d, want 2", v)
	}
}

// TestBackoffWithJitter pins the deterministic retry jitter: factors stay
// inside [0.8, 1.2), identical (seed, epoch, try) keys reproduce exactly,
// and distinct seeds desynchronize.
func TestBackoffWithJitter(t *testing.T) {
	const base = 80 * time.Millisecond
	lo := time.Duration(float64(base) * 0.8)
	hi := time.Duration(float64(base) * 1.2)
	varied := false
	for seed := uint64(1); seed <= 4; seed++ {
		for epoch := 0; epoch < 8; epoch++ {
			for try := 1; try <= 3; try++ {
				d := backoffWithJitter(base, seed, epoch, try)
				if d < lo || d >= hi {
					t.Fatalf("seed %d epoch %d try %d: %v outside [%v, %v)", seed, epoch, try, d, lo, hi)
				}
				if d != backoffWithJitter(base, seed, epoch, try) {
					t.Fatalf("seed %d epoch %d try %d: not deterministic", seed, epoch, try)
				}
				if d != base {
					varied = true
				}
			}
		}
	}
	if !varied {
		t.Fatal("jitter never moved a delay off the base")
	}
	if backoffWithJitter(base, 1, 5, 1) == backoffWithJitter(base, 2, 5, 1) &&
		backoffWithJitter(base, 1, 6, 2) == backoffWithJitter(base, 2, 6, 2) {
		t.Fatal("distinct seeds did not desynchronize")
	}
}

// scriptedOps is an OpSource fake: it hands the controller a fixed batch
// of stream ops at one epoch and nothing elsewhere.
type scriptedOps struct {
	at    int
	ops   []StreamOp
	fired bool
}

func (s *scriptedOps) Drain(epoch int) []StreamOp {
	if s.fired || epoch != s.at {
		return nil
	}
	s.fired = true
	return s.ops
}

// TestOpSourceStreamChurn drives mid-run stream churn through the OpSource
// seam: at epoch 2 one camera registers and one deregisters, the epoch
// replans on the new stream set, and the controller's system reflects the
// swap for the rest of the run.
func TestOpSourceStreamChurn(t *testing.T) {
	sys := testSys(4, 3)
	gone := sys.Clips[0].Name
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	c := controller(sys, zeroJitterScheduler(), 100)
	c.Obs = rec
	c.Ops = &scriptedOps{at: 2, ops: []StreamOp{
		{Add: &videosim.Clip{Name: "cam-live", AccBase: 0.9, AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1}},
		{Remove: gone},
	}}
	trace, err := c.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Reports[2].Replanned {
		t.Fatalf("epoch 2 did not replan on churn: %+v", trace.Reports[2])
	}
	for _, e := range []int{0, 1, 3, 4} {
		// ReplanEvery 100: without churn only epoch 0 plans.
		if e != 0 && trace.Reports[e].Replanned {
			t.Fatalf("epoch %d replanned without churn", e)
		}
	}
	if c.Sys.M() != 4 {
		t.Fatalf("M = %d after paired add/remove, want 4", c.Sys.M())
	}
	names := map[string]bool{}
	for _, clip := range c.Sys.Clips {
		names[clip.Name] = true
	}
	if !names["cam-live"] || names[gone] {
		t.Fatalf("stream set after churn: %v", names)
	}
	if v := rec.Registry().Counter("runtime_churn_ops_total").Value(); v != 2 {
		t.Fatalf("churn ops = %d, want 2", v)
	}
}

// scriptedHealth is a HealthSource fake that is not a fault.Injector: it
// marks server 1 down between two epochs, emitting the matching events.
// It proves the loop's liveness seam works for any inference source, not
// just the injected-fault oracle.
type scriptedHealth struct {
	servers      int
	downAt, upAt int
	down         bool
}

func (s *scriptedHealth) Advance(epoch int) []fault.Event {
	switch epoch {
	case s.downAt:
		s.down = true
		return []fault.Event{{Epoch: epoch, Action: fault.ServerDown, Target: 1}}
	case s.upAt:
		s.down = false
		return []fault.Event{{Epoch: epoch, Action: fault.ServerUp, Target: 1}}
	}
	return nil
}

func (s *scriptedHealth) State() fault.State {
	st := fault.State{Down: make([]bool, s.servers)}
	st.Down[1] = s.down
	return st
}

// TestHealthSourceDrivesReplans wires a scripted external health source
// into the controller: its events force replans at the down and up epochs,
// the dead server carries no streams while masked, and the fleet gauge
// tracks the source's state.
func TestHealthSourceDrivesReplans(t *testing.T) {
	sys := testSys(4, 3)
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	c := controller(sys, zeroJitterScheduler(), 100)
	c.Obs = rec
	c.Health = &scriptedHealth{servers: 3, downAt: 2, upAt: 5}
	trace, err := c.Run(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Reports {
		want := 3
		if r.Epoch >= 2 && r.Epoch < 5 {
			want = 2
		}
		if r.HealthyServers != want {
			t.Fatalf("epoch %d healthy = %d, want %d", r.Epoch, r.HealthyServers, want)
		}
		if r.Epoch >= 2 && r.Epoch < 5 && r.ServerStreams[1] != 0 {
			t.Fatalf("epoch %d placed %d streams on the down server", r.Epoch, r.ServerStreams[1])
		}
	}
	for _, e := range []int{2, 5} {
		if r := trace.Reports[e]; r.FaultEvents != 1 || !r.Replanned {
			t.Fatalf("epoch %d: events=%d replanned=%v, want forced replan", e, r.FaultEvents, r.Replanned)
		}
	}
	if v := rec.Registry().Counter("fault_events_total").Value(); v != 2 {
		t.Fatalf("fault events = %d, want 2", v)
	}
}
