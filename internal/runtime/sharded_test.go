package runtime

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
)

// TestShardedControllerRunsStrict drives the full control loop through the
// sharded decide path under a strict checker: every installed decision must
// pass the exact feasibility audit, every stream must be scheduled, and the
// loop must finish without violations at several shard counts.
func TestShardedControllerRunsStrict(t *testing.T) {
	for _, shards := range []int{2, 4} {
		sys := testSys(8, 4)
		c := controller(sys, zeroJitterScheduler(), 3)
		c.Opt.Shards = shards
		c.Opt.Check = check.New(true, nil)
		trace, err := c.Run(context.Background(), 9)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(trace.Reports) != 9 {
			t.Fatalf("shards=%d: reports = %d", shards, len(trace.Reports))
		}
		for _, r := range trace.Reports {
			if r.Degraded || r.ReplanFailed {
				t.Fatalf("shards=%d: epoch %d degraded=%v failed=%v", shards, r.Epoch, r.Degraded, r.ReplanFailed)
			}
		}
		if c.Opt.Check.Violations() != 0 {
			t.Fatalf("shards=%d: %d strict-mode violations", shards, c.Opt.Check.Violations())
		}
	}
}

// TestShardedDeterministicTrace runs the same sharded configuration twice
// and expects identical traces — the controller-level face of the planner's
// determinism guarantee.
func TestShardedDeterministicTrace(t *testing.T) {
	run := func() *Trace {
		sys := testSys(6, 3)
		c := controller(sys, zeroJitterScheduler(), 2)
		c.Opt.Shards = 3
		trace, err := c.Run(context.Background(), 6)
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("sharded traces diverge across identical runs")
	}
}

// TestShardedDefaultIsSerial pins the Shards=0/1 contract: the sharded path
// must not engage, so the trace is byte-identical to the default controller
// — the golden-trace safety property.
func TestShardedDefaultIsSerial(t *testing.T) {
	run := func(shards int) *Trace {
		sys := testSys(5, 3)
		c := controller(sys, zeroJitterScheduler(), 4)
		c.Opt.Shards = shards
		trace, err := c.Run(context.Background(), 8)
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	base := run(0)
	if !reflect.DeepEqual(base, run(1)) {
		t.Fatal("Shards=1 diverged from the default serial path")
	}
}

// TestShardedUnderFaults crashes a server mid-run: the sharded decide path
// must plan around the mask and recover when the server returns.
func TestShardedUnderFaults(t *testing.T) {
	sys := testSys(6, 4)
	c := controller(sys, zeroJitterScheduler(), 2)
	c.Opt.Shards = 2
	c.Opt.Check = check.New(true, nil)
	sc := &fault.Scenario{Name: "kill-1", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 1},
		{Epoch: 5, Action: fault.ServerUp, Target: 1},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = inj
	trace, err := c.Run(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Reports {
		if r.Epoch >= 2 && r.Epoch < 5 {
			if r.HealthyServers != 3 {
				t.Fatalf("epoch %d: healthy=%d, want 3", r.Epoch, r.HealthyServers)
			}
			if r.ServerStreams[1] != 0 {
				t.Fatalf("epoch %d: down server still has %d streams", r.Epoch, r.ServerStreams[1])
			}
		}
	}
	if c.Opt.Check.Violations() != 0 {
		t.Fatalf("%d strict-mode violations under faults", c.Opt.Check.Violations())
	}
}
