package runtime

import (
	"context"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
)

// adoptIncremental installs a freshly scheduled decision as the replanner's
// baseline. The grouping is recovered from the assignment: streams sharing a
// server form one group — Algorithm 1 gives every group a distinct server,
// so this is exactly the grouping the plan came from, up to member order,
// which neither Const2 (a sum) nor Theorem 1's offsets (valid for any order)
// depend on. Decisions the fast path cannot extend — degraded, non-zero-
// jitter, or malformed — invalidate the baseline instead, forcing the next
// incremental attempt to decline.
func adoptIncremental(rp *sched.Replanner, d eva.Decision, n int) {
	if d.IsDegraded() || !d.ZeroJit || len(d.Streams) == 0 || len(d.Streams) != len(d.Assign) {
		rp.Invalidate()
		return
	}
	groups := make([][]int, n)
	for i, a := range d.Assign {
		if a < 0 || a >= n {
			rp.Invalidate()
			return
		}
		groups[a] = append(groups[a], i)
	}
	rp.Adopt(d.Streams, sched.Plan{Groups: groups})
}

// incrementalReplan attempts the amortized replan: keep the previous
// decision's configurations and grouping, recompute the planned per-frame
// costs from the drifted clips, and let the Replanner re-verify exact
// feasibility and re-solve only the group→server assignment over the healthy
// servers. ok=false means the fast path declined — stale baseline, changed
// periods, a group whose drifted processing no longer fits its exact gcd
// budget, or too few surviving servers — and the caller must fall back to a
// full scheduler invocation. ctx carries the epoch's trace context, so the
// replanner's sched_incremental span nests under the epoch span.
func (c *Controller) incrementalReplan(ctx context.Context, rp *sched.Replanner, sys *objective.System, prev eva.Decision, healthy []bool) (eva.Decision, bool) {
	if prev.IsDegraded() || !prev.ZeroJit || len(prev.Streams) == 0 {
		return eva.Decision{}, false
	}
	streams := append([]sched.Stream(nil), prev.Streams...)
	for i := range streams {
		clip := sys.Clips[streams[i].Video]
		cfg := prev.Configs[streams[i].Video]
		streams[i].Proc = clip.ProcTimeOf(cfg)
		streams[i].Bits = clip.BitsOf(cfg)
	}
	plan, ok := rp.IncrementalCtx(ctx, streams, sys.Servers, healthy)
	if !ok {
		return eva.Decision{}, false
	}
	specs, _ := plan.ToClusterStreams(streams, sys.Servers)
	offsets := make([]float64, len(streams))
	for i := range specs {
		offsets[i] = specs[i].Offset
	}
	return eva.Decision{
		Configs: prev.Configs, Streams: streams, Assign: plan.StreamServer,
		Offsets: offsets, ZeroJit: true,
	}, true
}
