package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/videosim"
)

func testSys(m, n int) *objective.System {
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	return &objective.System{Clips: videosim.StandardClips(m, 77), Servers: servers}
}

// zeroJitterScheduler plans a fixed mid-grid configuration with
// Algorithm 1 each time it is asked.
func zeroJitterScheduler() Scheduler {
	return &FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}}
}

func controller(sys *objective.System, s Scheduler, replanEvery int) *Controller {
	return &Controller{
		Sys:   sys,
		Sched: s,
		Truth: objective.UniformPreference(),
		Norm:  objective.NewNormalizer(sys),
		Opt:   Options{ReplanEvery: replanEvery},
	}
}

func TestControllerRunsAndReports(t *testing.T) {
	sys := testSys(5, 3)
	c := controller(sys, zeroJitterScheduler(), 4)
	trace, err := c.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 10 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	replans := 0
	for i, r := range trace.Reports {
		if r.Epoch != i {
			t.Fatalf("epoch %d mislabeled as %d", i, r.Epoch)
		}
		if r.Outcome[objective.Latency] <= 0 || r.Outcome[objective.Accuracy] <= 0 {
			t.Fatalf("epoch %d outcomes empty: %+v", i, r.Outcome)
		}
		if r.Replanned {
			replans++
		}
	}
	if replans != 3 { // epochs 0, 4, 8
		t.Fatalf("replans = %d, want 3", replans)
	}
	if trace.MeanBenefit() >= 0 || trace.MeanBenefit() < -5 {
		t.Fatalf("mean benefit %v out of range", trace.MeanBenefit())
	}
}

func TestControllerZeroJitterAtReplanEpochs(t *testing.T) {
	sys := testSys(4, 3)
	c := controller(sys, zeroJitterScheduler(), 1) // replan every epoch
	trace, err := c.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Reports {
		// Replanning every epoch keeps offsets matched to the drifted
		// processing times up to drift within the epoch; jitter stays tiny.
		if r.MaxJitter > 0.02 {
			t.Fatalf("epoch %d jitter %v", r.Epoch, r.MaxJitter)
		}
	}
}

func TestContentDriftMovesOutcomes(t *testing.T) {
	sys := testSys(4, 3)
	c := controller(sys, zeroJitterScheduler(), 100) // plan once, never again
	trace, err := c.Run(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	first := trace.Reports[0].Outcome[objective.Compute]
	moved := false
	for _, r := range trace.Reports[1:] {
		if r.Outcome[objective.Compute] != first {
			moved = true
		}
	}
	if !moved {
		t.Fatal("content drift did not affect measured compute")
	}
}

func TestControllerContextCancellation(t *testing.T) {
	sys := testSys(4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trace, err := controller(sys, zeroJitterScheduler(), 2).Run(ctx, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(trace.Reports) != 0 {
		t.Fatalf("cancelled run produced %d reports", len(trace.Reports))
	}
}

func TestControllerTimeoutMidRun(t *testing.T) {
	sys := testSys(4, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Slow scheduler: each decision sleeps, so the deadline hits mid-run.
	slow := SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
		time.Sleep(30 * time.Millisecond)
		return zeroJitterScheduler().Decide(ctx, s, epoch)
	})
	trace, err := controller(sys, slow, 1).Run(ctx, 1000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if len(trace.Reports) >= 1000 {
		t.Fatal("run did not stop at the deadline")
	}
}

func TestControllerKeepsDecisionOnReplanFailure(t *testing.T) {
	sys := testSys(4, 3)
	calls := 0
	flaky := SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
		calls++
		if calls > 1 {
			return eva.Decision{}, errors.New("synthetic failure")
		}
		return zeroJitterScheduler().Decide(ctx, s, epoch)
	})
	trace, err := controller(sys, flaky, 2).Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 6 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	// Only the first epoch shows a successful replan.
	for i, r := range trace.Reports {
		if (i == 0) != r.Replanned {
			t.Fatalf("epoch %d replanned = %v", i, r.Replanned)
		}
	}
}

func TestControllerFailsWithoutInitialDecision(t *testing.T) {
	sys := testSys(4, 3)
	broken := SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
		return eva.Decision{}, errors.New("nope")
	})
	_, err := controller(sys, broken, 2).Run(context.Background(), 3)
	if !errors.Is(err, ErrNoDecision) {
		t.Fatalf("err = %v", err)
	}
}

func TestEventDrivenReplanOnBenefitDrop(t *testing.T) {
	sys := testSys(4, 3)
	c := controller(sys, zeroJitterScheduler(), 1000) // clock replans off
	// Any measurable drop triggers a replan on the next epoch: with
	// ±5% content drift the benefit always wiggles beyond 1e-9.
	c.Opt.ReplanOnDrop = 1e-9
	trace, err := c.Run(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	replans := 0
	for _, r := range trace.Reports[1:] {
		if r.Replanned {
			replans++
		}
	}
	if replans == 0 {
		t.Fatal("benefit drop never triggered a replan")
	}
	// And with the trigger disabled, only epoch 0 replans.
	c2 := controller(sys, zeroJitterScheduler(), 1000)
	trace2, err := c2.Run(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace2.Reports[1:] {
		if r.Replanned {
			t.Fatal("replanned without trigger or clock")
		}
	}
}

func TestControllerWithJCABScheduler(t *testing.T) {
	sys := testSys(5, 3)
	jcab := SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
		return baselines.JCAB(ctx, s, baselines.JCABOptions{Seed: uint64(epoch)})
	})
	trace, err := controller(sys, jcab, 3).Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 6 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
}

func TestPaMOSchedulerAdapter(t *testing.T) {
	sys := testSys(4, 3)
	truth := objective.UniformPreference()
	planner := &PaMOScheduler{
		DM: &pref.Oracle{Pref: truth},
		Opt: pamo.Options{
			InitProfiles: 10, InitObs: 2, PrefPairs: 6, PrefPool: 8,
			Batch: 2, MCSamples: 8, CandPool: 6, MaxIter: 2, Seed: 3,
		},
	}
	c := controller(sys, planner, 3)
	trace, err := c.Run(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 4 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	// PaMO's zero-jitter plans keep jitter tiny even under drift.
	for _, r := range trace.Reports {
		if r.MaxJitter > 0.05 {
			t.Fatalf("epoch %d jitter %v", r.Epoch, r.MaxJitter)
		}
	}
}

func TestParallelEvaluationDeterministic(t *testing.T) {
	sys := testSys(6, 4)
	run := func() *Trace {
		tr, err := controller(sys, zeroJitterScheduler(), 2).Run(context.Background(), 8)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	for i := range a.Reports {
		if a.Reports[i].Outcome != b.Reports[i].Outcome {
			t.Fatalf("nondeterministic outcome at epoch %d:\n%v\n%v", i, a.Reports[i].Outcome, b.Reports[i].Outcome)
		}
	}
}
