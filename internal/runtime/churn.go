package runtime

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/eva"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// ChurnFeed adapts a fault.ChurnScript to the controller's OpSource:
// scripted departures become deregisters by name, scripted arrivals mint a
// videosim.Clip whose content factors are derived from (seed, name) — never
// from drain order — so the same script always produces the same streams.
type ChurnFeed struct {
	script *fault.ChurnScript
	seed   uint64
	next   int
}

// NewChurnFeed returns an OpSource replaying the script. The script's ops
// must be in non-decreasing epoch order (fault.GenerateChurn emits them
// that way).
func NewChurnFeed(script *fault.ChurnScript, seed uint64) *ChurnFeed {
	return &ChurnFeed{script: script, seed: seed}
}

// Drain implements OpSource.
func (f *ChurnFeed) Drain(epoch int) []StreamOp {
	var ops []StreamOp
	for f.next < len(f.script.Ops) && f.script.Ops[f.next].Epoch <= epoch {
		op := f.script.Ops[f.next]
		f.next++
		if op.Add {
			ops = append(ops, StreamOp{Add: MintClip(op.Name, f.seed)})
		} else {
			ops = append(ops, StreamOp{Remove: op.Name})
		}
	}
	return ops
}

// MintClip builds the deterministic clip for a churn-script stream name:
// factors are drawn from a PCG keyed on (seed, FNV-1a of the name).
func MintClip(name string, seed uint64) *videosim.Clip {
	h := fnv.New64a()
	h.Write([]byte(name))
	return videosim.NewClip(name, rand.New(rand.NewPCG(seed, h.Sum64())))
}

// splitStreamOps canonicalizes a drained op batch: deregisters before
// registers, each phase sorted by stream name (stable). Drain's slice order
// is whatever the op source's transport produced — with in-order
// application a same-epoch deregister+register of one stream ID would
// silently resurrect or drop the stream depending on arrival order.
// Canonicalized, such a pair always nets out to "replace".
func splitStreamOps(ops []StreamOp) (removes []string, adds []*videosim.Clip) {
	for _, op := range ops {
		if op.Remove != "" {
			removes = append(removes, op.Remove)
		}
		if op.Add != nil {
			adds = append(adds, op.Add)
		}
	}
	sort.Strings(removes)
	sort.SliceStable(adds, func(i, j int) bool { return adds[i].Name < adds[j].Name })
	return removes, adds
}

// churnAdmitEvict is the churn fast path: apply this epoch's canonicalized
// stream ops to the system AND to the replanner's frozen grouping — exact
// Const2 eviction for departures, exact Const2 admission into compatible
// groups for arrivals — so the epoch's replan can run incrementally instead
// of paying a full Algorithm 1 resolve plus cold profiling. Arrivals borrow
// the configuration of the most similar live clip (factor-space distance,
// deterministic), which is also the donor the warm-started outcome models
// pool from. ok=false leaves the controller on the full-resolve path (the
// replanner may have been invalidated); on ok=true the returned decision is
// a baseline skeleton — Configs and Streams are final, the assignment is
// produced by the incremental replan that the caller forces this epoch.
func (c *Controller) churnAdmitEvict(rp *sched.Replanner, removes []string, adds []*videosim.Clip, current eva.Decision, healthy []bool) (eva.Decision, bool) {
	if current.IsDegraded() || !current.ZeroJit || len(current.Streams) == 0 {
		return eva.Decision{}, false
	}
	base := rp.Streams()
	if len(base) != len(current.Streams) {
		return eva.Decision{}, false
	}
	for i, s := range base {
		p := current.Streams[i]
		if s.Video != p.Video || s.Sub != p.Sub || s.Period != p.Period {
			return eva.Decision{}, false
		}
	}

	// Old-index bookkeeping before the system mutates underneath it.
	oldClips := c.Sys.Clips
	removed := make([]bool, len(oldClips))
	for _, name := range removes {
		for v, clip := range oldClips {
			if clip.Name == name && !removed[v] {
				removed[v] = true
				break
			}
		}
	}
	remap := make([]int, len(oldClips))
	next := 0
	for v := range oldClips {
		if removed[v] {
			remap[v] = -1
			continue
		}
		remap[v] = next
		next++
	}
	if next == 0 {
		return eva.Decision{}, false // everything departed; nothing to warm-start from
	}

	// Evict departures from the frozen grouping (always feasible — budgets
	// only shrink) and remap the survivors onto the compacted indexing.
	mask := make([]bool, len(base))
	for i, s := range base {
		mask[i] = removed[s.Video]
	}
	if !rp.Evict(mask) || !rp.RemapVideos(remap) {
		rp.Invalidate()
		return eva.Decision{}, false
	}

	// The system itself: removals compact the clip slice, additions append —
	// same canonical order, so arrival k gets video index next+k.
	c.applyCanonicalOps(removes, adds)
	newConfigs := make([]videosim.Config, len(c.Sys.Clips))
	for v, nv := range remap {
		if nv >= 0 {
			newConfigs[nv] = current.Configs[v]
		}
	}

	// Admit arrivals: donor = most similar surviving live clip in factor
	// space; its configuration seeds the arrival (and its outcome models
	// seed the warm start, in the pamo layer). Admission into the frozen
	// grouping is exact; any failure invalidates and falls back whole.
	for k, clip := range adds {
		v := next + k
		donor := c.mostSimilarClip(clip, next)
		if donor < 0 {
			rp.Invalidate()
			return eva.Decision{}, false
		}
		newConfigs[v] = newConfigs[donor]
		arrival := sched.SplitHighRate([]sched.Stream{{
			Video:  v,
			Period: sched.RatFromFPS(int64(math.Round(newConfigs[v].FPS))),
			Proc:   clip.ProcTimeOf(newConfigs[v]),
			Bits:   clip.BitsOf(newConfigs[v]),
		}})
		for _, s := range arrival {
			if _, ok := rp.Admit(s, c.Sys.Servers, healthy); !ok {
				rp.Invalidate()
				return eva.Decision{}, false
			}
		}
	}

	return eva.Decision{
		Configs: newConfigs,
		Streams: append([]sched.Stream(nil), rp.Streams()...),
		ZeroJit: true,
	}, true
}

// mostSimilarClip returns the index of the live clip (over the first n
// post-churn videos — the survivors) closest to clip in per-clip factor
// space (videosim.Clip.FactorDistance — the same similarity the pamo model
// bank ranks warm-start donors by), ties broken toward the lower index. −1
// when no survivor exists.
func (c *Controller) mostSimilarClip(clip *videosim.Clip, n int) int {
	best, bestD := -1, math.Inf(1)
	for v := 0; v < n && v < len(c.Sys.Clips); v++ {
		if d := clip.FactorDistance(c.Sys.Clips[v]); d < bestD {
			best, bestD = v, d
		}
	}
	return best
}
