package runtime

import (
	"context"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// FixedScheduler plans every video at one fixed configuration with
// Algorithm 1 zero-jitter grouping and Theorem 1 offsets each time it is
// asked — no optimization, just placement. It is mask-aware, so under
// faults it plans directly onto the surviving servers. Useful as a
// deterministic baseline and for fault-injection runs where the scheduling
// policy should stay out of the way.
type FixedScheduler struct {
	Cfg videosim.Config
}

// Decide implements Scheduler.
func (f *FixedScheduler) Decide(ctx context.Context, sys *objective.System, epoch int) (eva.Decision, error) {
	return f.DecideMasked(ctx, sys, nil, epoch)
}

// DecideCell implements CellDecider: every video in the cell gets the
// fixed configuration, trivially safe for concurrent cells.
func (f *FixedScheduler) DecideCell(ctx context.Context, sys *objective.System, videos []int, epoch int) ([]videosim.Config, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfgs := make([]videosim.Config, len(videos))
	for i := range cfgs {
		cfgs[i] = f.Cfg
	}
	return cfgs, nil
}

// DecideMasked implements MaskAware.
func (f *FixedScheduler) DecideMasked(ctx context.Context, sys *objective.System, healthy []bool, epoch int) (eva.Decision, error) {
	if err := ctx.Err(); err != nil {
		return eva.Decision{}, err
	}
	cfgs := make([]videosim.Config, sys.M())
	for i := range cfgs {
		cfgs[i] = f.Cfg
	}
	streams := eva.BuildStreams(sys, cfgs)
	plan, err := sched.ScheduleMasked(streams, sys.Servers, healthy)
	if err != nil {
		return eva.Decision{}, err
	}
	specs, _ := plan.ToClusterStreams(streams, sys.Servers)
	offsets := make([]float64, len(streams))
	for i := range specs {
		offsets[i] = specs[i].Offset
	}
	return eva.Decision{
		Configs: cfgs, Streams: streams, Assign: plan.StreamServer,
		Offsets: offsets, ZeroJit: true,
	}, nil
}
