package runtime

import (
	"math"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// defaultConfigs is the mid-grid fallback configuration the degradation
// policy starts from when no prior decision exists.
func defaultConfigs(m int) []videosim.Config {
	cfgs := make([]videosim.Config, m)
	for i := range cfgs {
		cfgs[i] = videosim.Config{Resolution: 1000, FPS: 10}
	}
	return cfgs
}

// degrade is the graceful-degradation policy: starting from the base
// per-video configurations it searches for the least harmful workload that
// Algorithm 1 can still place on the healthy servers. Each step lowers one
// knob on the highest-compute-utilization live video — frame rate first
// (sampling sheds load linearly and relaxes Const2's gcd), then
// resolution — and retries the zero-jitter grouping. Only when every live
// video sits at the knob minimum does it drop whole videos, lowest
// truth-benefit contribution (accuracy weight × achievable accuracy)
// first. The returned decision uses the full physical server index space
// and records its victims in Shed/Downgraded; with zero healthy servers
// everything is shed. priorShed/priorDown carry an earlier degradation's
// victims forward, so re-degrading an already-degraded decision (a replan
// epoch mid-outage) keeps reporting the full set until a successful full
// replan resets it. It is deterministic: ties break on the lowest video
// index.
func (c *Controller) degrade(sys *objective.System, healthy []bool, base []videosim.Config, priorShed, priorDown []int) eva.Decision {
	m := sys.M()
	cfgs := append([]videosim.Config(nil), base...)
	shed := make([]bool, m)
	down := make([]bool, m)
	for _, i := range priorShed {
		if i >= 0 && i < m {
			shed[i] = true
		}
	}
	for _, i := range priorDown {
		if i >= 0 && i < m {
			down[i] = true
		}
	}

	nHealthy := sys.N()
	if healthy != nil {
		nHealthy = 0
		for _, ok := range healthy {
			if ok {
				nHealthy++
			}
		}
	}
	if nHealthy == 0 {
		for i := range shed {
			shed[i] = true
		}
		return eva.Decision{Configs: cfgs, ZeroJit: true, Shed: trueIndices(shed)}
	}

	// The cluster is fixed for the whole search: capture it once as the
	// same immutable snapshot every other planning path consumes.
	snap := sched.NewSnapshot(0, sys.Servers, healthy)
	try := func() (eva.Decision, bool) {
		raw := make([]sched.Stream, 0, m)
		for i, clip := range sys.Clips {
			if shed[i] {
				continue
			}
			raw = append(raw, sched.Stream{
				Video:  i,
				Period: sched.RatFromFPS(int64(math.Round(cfgs[i].FPS))),
				Proc:   clip.ProcTimeOf(cfgs[i]),
				Bits:   clip.BitsOf(cfgs[i]),
			})
		}
		streams := sched.SplitHighRate(raw)
		plan, err := sched.ScheduleSnapshot(streams, snap)
		if err != nil {
			return eva.Decision{}, false
		}
		specs, _ := plan.ToClusterStreams(streams, sys.Servers)
		offsets := make([]float64, len(streams))
		for i := range specs {
			offsets[i] = specs[i].Offset
		}
		return eva.Decision{
			Configs:    append([]videosim.Config(nil), cfgs...),
			Streams:    streams,
			Assign:     append([]int(nil), plan.StreamServer...),
			Offsets:    offsets,
			ZeroJit:    true,
			Shed:       trueIndices(shed),
			Downgraded: trueIndices(down),
		}, true
	}

	// Each iteration removes load, and a fully-shed workload is trivially
	// feasible, so the loop terminates; the cap is pure insurance.
	maxIter := (m + 1) * (len(videosim.FrameRates) + len(videosim.Resolutions) + 2)
	for iter := 0; iter < maxIter; iter++ {
		if d, ok := try(); ok {
			return d
		}
		// Downgrade the highest-utilization video that still has headroom.
		pick, best := -1, 0.0
		for i := range cfgs {
			if shed[i] || !lowerable(cfgs[i]) {
				continue
			}
			u := sys.Clips[i].ProcTimeOf(cfgs[i]) * cfgs[i].FPS
			if pick == -1 || u > best {
				pick, best = i, u
			}
		}
		if pick >= 0 {
			cfgs[pick] = lowerOne(cfgs[pick])
			down[pick] = true
			continue
		}
		// Every live video is at the minimum: drop the one contributing the
		// least truth benefit.
		drop, worst := -1, 0.0
		for i := range cfgs {
			if shed[i] {
				continue
			}
			b := c.Truth.W[objective.Accuracy] * sys.Clips[i].Accuracy(cfgs[i])
			if drop == -1 || b < worst {
				drop, worst = i, b
			}
		}
		if drop < 0 {
			break
		}
		shed[drop] = true
		down[drop] = false // shed and downgraded are disjoint records
	}
	// Cap hit (should be unreachable): shed everything still live.
	for i := range shed {
		shed[i] = true
		down[i] = false
	}
	return eva.Decision{Configs: cfgs, ZeroJit: true, Shed: trueIndices(shed)}
}

// lowerable reports whether the configuration has a knob above its grid
// minimum.
func lowerable(c videosim.Config) bool {
	return c.FPS > videosim.FrameRates[0] || c.Resolution > videosim.Resolutions[0]
}

// lowerOne steps one knob down the grid: frame rate while possible, then
// resolution. Off-grid values snap to the next grid point below.
func lowerOne(c videosim.Config) videosim.Config {
	if c.FPS > videosim.FrameRates[0] {
		c.FPS = stepDown(videosim.FrameRates, c.FPS)
		return c
	}
	if c.Resolution > videosim.Resolutions[0] {
		c.Resolution = stepDown(videosim.Resolutions, c.Resolution)
	}
	return c
}

// stepDown returns the largest grid value strictly below x (grid sorted
// ascending); below-grid inputs return the grid minimum.
func stepDown(grid []float64, x float64) float64 {
	out := grid[0]
	for _, g := range grid {
		if g < x && g > out {
			out = g
		}
	}
	return out
}

func trueIndices(mask []bool) []int {
	var out []int
	for i, b := range mask {
		if b {
			out = append(out, i)
		}
	}
	return out
}
