package runtime

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestSplitStreamOpsCanonicalizes pins the drain-batch canonical form:
// deregisters split out before registers, each phase sorted by name, so the
// transport's delivery order can never change what a batch means.
func TestSplitStreamOpsCanonicalizes(t *testing.T) {
	ops := []StreamOp{
		{Add: MintClip("cam-b", 1)},
		{Remove: "cam-z"},
		{Add: MintClip("cam-a", 1)},
		{Remove: "cam-c"},
	}
	removes, adds := splitStreamOps(ops)
	if !reflect.DeepEqual(removes, []string{"cam-c", "cam-z"}) {
		t.Fatalf("removes = %v", removes)
	}
	if len(adds) != 2 || adds[0].Name != "cam-a" || adds[1].Name != "cam-b" {
		t.Fatalf("adds = %v", adds)
	}
}

// TestStreamOpsCanonicalOrder is the regression for the op-ordering bug: a
// same-epoch deregister+register of one stream name must net out to
// "replace" no matter which order the op source's transport delivered the
// pair. Before canonicalization, [register cam-X', deregister cam-X]
// applied in order dropped the replacement (the deregister matched the
// freshly registered name), while the reverse order replaced — the same
// logical batch produced two different fleets.
func TestStreamOpsCanonicalOrder(t *testing.T) {
	run := func(ops []StreamOp) (*Trace, *Controller) {
		sys := testSys(4, 3)
		c := controller(sys, zeroJitterScheduler(), 100)
		c.Ops = &scriptedOps{at: 2, ops: ops}
		tr, err := c.Run(context.Background(), 6)
		if err != nil {
			t.Fatal(err)
		}
		return tr, c
	}
	gone := testSys(4, 3).Clips[0].Name
	replacement := MintClip(gone, 12345)

	trA, cA := run([]StreamOp{{Remove: gone}, {Add: replacement}})
	trB, cB := run([]StreamOp{{Add: replacement}, {Remove: gone}})

	for name, c := range map[string]*Controller{"remove-first": cA, "add-first": cB} {
		if c.Sys.M() != 4 {
			t.Fatalf("%s: M = %d after paired remove/add, want 4", name, c.Sys.M())
		}
		found := false
		for _, clip := range c.Sys.Clips {
			if clip.Name == gone {
				found = true
				if !reflect.DeepEqual(clip, replacement) {
					t.Fatalf("%s: %q kept the old clip — replacement dropped", name, gone)
				}
			}
		}
		if !found {
			t.Fatalf("%s: %q missing — stream dropped instead of replaced", name, gone)
		}
	}
	if !reflect.DeepEqual(cA.Sys, cB.Sys) {
		t.Fatal("op order changed the resulting system")
	}
	if !reflect.DeepEqual(trA, trB) {
		t.Fatal("op order changed the run trace")
	}
}

// TestChurnUnderFaultsAvoidsMaskedServers registers a new camera while a
// server is down, with the incremental fast path on and the strict checker
// auditing every installed decision. Whichever path places the arrival —
// exact admission plus the Hungarian re-map, or the full fallback — no
// stream may land on the masked server for any outage epoch, and the
// arrival must survive to the end of the run.
func TestChurnUnderFaultsAvoidsMaskedServers(t *testing.T) {
	sys := testSys(4, 3)
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	sc := &fault.Scenario{Events: []fault.Event{
		{Epoch: 3, Action: fault.ServerDown, Target: 1},
		{Epoch: 7, Action: fault.ServerUp, Target: 1},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	c := controller(sys, zeroJitterScheduler(), 2)
	c.Faults = inj
	c.Obs = rec
	c.Opt.Incremental = true
	c.Opt.Check = check.New(true, rec)
	c.Ops = &scriptedOps{at: 4, ops: []StreamOp{{Add: MintClip("cam-late", 7)}}}

	trace, err := c.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Reports[4].Replanned {
		t.Fatal("churn epoch 4 did not replan")
	}
	for _, r := range trace.Reports {
		if r.Epoch >= 3 && r.Epoch < 7 && r.ServerStreams[1] != 0 {
			t.Fatalf("epoch %d: %d streams on the down server", r.Epoch, r.ServerStreams[1])
		}
	}
	if c.Sys.M() != 5 {
		t.Fatalf("M = %d after the arrival, want 5", c.Sys.M())
	}
	names := map[string]bool{}
	for _, clip := range c.Sys.Clips {
		names[clip.Name] = true
	}
	if !names["cam-late"] {
		t.Fatal("arrival vanished from the system")
	}
	reg := rec.Registry()
	if v := reg.Counter("runtime_churn_ops_total").Value(); v != 1 {
		t.Fatalf("churn ops = %v, want 1", v)
	}
	if v := reg.Counter("runtime_churn_epochs_total").Value(); v != 1 {
		t.Fatalf("churn epochs = %v, want 1", v)
	}
}
