package runtime

import (
	"context"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/eva"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// TestStrictCheckerCleanUnderFaults runs the fault acceptance scenario —
// server crash, degradation pressure, recovery — under a strict checker:
// every installed decision (including the degraded replans) must pass the
// exact feasibility verifier, and the check_* metrics must show decisions
// were actually audited.
func TestStrictCheckerCleanUnderFaults(t *testing.T) {
	sys := uniformSys(6, 3)
	sc := &fault.Scenario{Name: "crash-recover", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 0},
		{Epoch: 4, Action: fault.ServerDown, Target: 2},
		{Epoch: 8, Action: fault.ServerUp, Target: 0},
	}}
	// 1000×10 fits 2+ healthy servers but not 1, so the epoch-4 state forces
	// the degradation policy while other epochs install normal replans.
	c := faultController(sys, &FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}}, 100, sc, t)
	rec := obs.NewRecorder(nil)
	c.Obs = rec
	c.Opt.Check = check.New(true, rec)
	trace, err := c.Run(context.Background(), 12)
	if err != nil {
		t.Fatalf("strict fault run errored: %v", err)
	}
	if len(trace.Reports) != 12 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	sawDegraded := false
	for _, r := range trace.Reports {
		sawDegraded = sawDegraded || r.Degraded
	}
	if !sawDegraded {
		t.Fatal("scenario never degraded — the degraded-decision audit path was not exercised")
	}
	snap := rec.Registry().Snapshot()
	if snap.Counters["check_checks_decision"] == 0 {
		t.Fatal("no installed decision was verified")
	}
	if snap.Counters["check_checks_jitter"] == 0 {
		t.Fatal("no epoch jitter was observed by the checker")
	}
	if snap.Counters["check_checks_feasibility"] == 0 {
		t.Fatal("no feasibility check ran")
	}
}

// TestStrictCheckerRejectsBuggyScheduler installs a scheduler that emits a
// structurally valid but exactly infeasible decision: a 5 s⁻¹ and a 10 s⁻¹
// stream with per-frame cost 0.05 s share one server, so the plan claims
// Σp = 2·0.05 ≤ gcd = 0.1 — float arithmetic accepts it, exact rational
// arithmetic refutes it (float64(0.05) > 1/20, and the mixed periods keep
// utilization at 0.75 so only Const2 is at stake). The old float-tolerance
// runtime ran this plan; the strict checker must abort with a const2
// diagnosis.
func TestStrictCheckerRejectsBuggyScheduler(t *testing.T) {
	sys := uniformSys(2, 2)
	buggy := SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
		streams := []sched.Stream{
			{Video: 0, Period: sched.Rat(1, 5), Proc: 0.05},
			{Video: 1, Period: sched.RatFromFPS(10), Proc: 0.05},
		}
		return eva.Decision{
			Configs: make([]videosim.Config, s.M()),
			Streams: streams,
			Assign:  []int{0, 0},
		}, nil
	})
	c := controller(sys, buggy, 5)
	rec := obs.NewRecorder(nil)
	c.Opt.Check = check.New(true, rec)
	_, err := c.Run(context.Background(), 3)
	if err == nil {
		t.Fatal("strict run accepted an exactly infeasible decision")
	}
	if !strings.Contains(err.Error(), "const2") {
		t.Fatalf("error does not diagnose const2: %v", err)
	}
	// The same run under a relaxed checker proceeds, recording the violation.
	c2 := controller(sys, buggy, 5)
	rec2 := obs.NewRecorder(nil)
	c2.Opt.Check = check.New(false, rec2)
	if _, err := c2.Run(context.Background(), 3); err != nil {
		t.Fatalf("relaxed run errored: %v", err)
	}
	if rec2.Registry().Snapshot().Counters["check_violation_const2"] == 0 {
		t.Fatal("relaxed checker did not record the const2 violation")
	}
}
