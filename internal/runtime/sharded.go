package runtime

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/videosim"
)

// CellDecider is the optional Scheduler extension the sharded control plane
// runs on: a scheduler that can choose configurations for one cell's videos
// in isolation. With Options.Shards > 1 the controller partitions the
// videos into cells, runs DecideCell for every cell concurrently, and hands
// the combined workload to the shard planner — per-cell grouping, claim
// proposals, and the arbiter's optimistic cross-cell commit — instead of
// the scheduler's own placement. Schedulers without this extension fall
// back to the serial decide path regardless of Shards.
type CellDecider interface {
	Scheduler
	// DecideCell returns one configuration per entry of videos (the cell's
	// video indices into sys.Clips, ascending). It must be safe for
	// concurrent calls with disjoint cells.
	DecideCell(ctx context.Context, sys *objective.System, videos []int, epoch int) ([]videosim.Config, error)
}

// decideSharded is the Shards>1 decide path: concurrent per-cell
// configuration decisions, then one sharded placement solve against an
// immutable snapshot of the (possibly fault-masked) cluster. The snapshot
// version is the epoch, so telemetry ties conflicts back to control time.
// The returned shard.Stats feed the epoch's benefit-attribution ledger
// (conflict retries, fallbacks, per-cell bounce counts).
func (c *Controller) decideSharded(ctx context.Context, cd CellDecider, sys *objective.System, healthy []bool, epoch int, opt Options) (eva.Decision, shard.Stats, error) {
	cells := shard.PartitionVideos(sys.M(), opt.Shards)
	cfgs := make([]videosim.Config, sys.M())
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for ci := range cells {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c.Obs.Do(ctx, "decide_cell", func(ctx context.Context) {
				cctx, csp := c.Obs.StartSpanCtx(ctx, "decide_cell",
					obs.F("cell", float64(ci)),
					obs.F("videos", float64(len(cells[ci]))))
				sub, err := cd.DecideCell(cctx, sys, cells[ci], epoch)
				csp.Field("failed", boolField(err != nil))
				csp.End()
				if err != nil {
					errs[ci] = err
					return
				}
				if len(sub) != len(cells[ci]) {
					errs[ci] = fmt.Errorf("runtime: cell %d returned %d configs for %d videos", ci, len(sub), len(cells[ci]))
					return
				}
				for k, v := range cells[ci] {
					cfgs[v] = sub[k]
				}
			})
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return eva.Decision{}, shard.Stats{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return eva.Decision{}, shard.Stats{}, err
	}

	streams := eva.BuildStreams(sys, cfgs)
	snap := sched.NewSnapshot(uint64(epoch), sys.Servers, healthy)
	// A fresh planner per invocation: decide attempts that outlive their
	// deadline are abandoned, not cancelled, so cross-attempt scratch
	// sharing would race. The steady-state reuse story lives in the bench,
	// which owns its planner.
	pl := shard.New(shard.Options{Shards: opt.Shards, Obs: c.Obs, Check: opt.Check})
	plan, stats, err := pl.PlanCtx(ctx, streams, snap)
	if err != nil {
		return eva.Decision{}, stats, err
	}
	specs, _ := plan.ToClusterStreams(streams, sys.Servers)
	offsets := make([]float64, len(streams))
	for i := range specs {
		offsets[i] = specs[i].Offset
	}
	return eva.Decision{
		Configs: cfgs, Streams: streams, Assign: plan.StreamServer,
		Offsets: offsets, ZeroJit: true,
	}, stats, nil
}
