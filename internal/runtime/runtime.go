// Package runtime is the online control plane of the EVA system (Section
// 2.1's loop made concrete): camera and server agents report status over
// channels, a controller periodically collects it, re-plans through a
// pluggable scheduler when content drift degrades the running decision,
// and dispatches new configurations. Epochs are virtual time; all
// concurrency is real.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// EpochSeconds is the wall-clock length one epoch represents.
const EpochSeconds = 60.0

// Scheduler produces a decision for the system as it looks at a given
// epoch.
type Scheduler interface {
	Decide(sys *objective.System, epoch int) (eva.Decision, error)
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(sys *objective.System, epoch int) (eva.Decision, error)

// Decide implements Scheduler.
func (f SchedulerFunc) Decide(sys *objective.System, epoch int) (eva.Decision, error) {
	return f(sys, epoch)
}

// EpochReport is the controller's record of one epoch.
type EpochReport struct {
	Epoch     int
	Outcome   objective.Vector // measured under the drifted content
	Benefit   float64          // truth-scored benefit (for the trace owner)
	MaxJitter float64
	Replanned bool
}

// Trace is the full run history.
type Trace struct {
	Reports []EpochReport
}

// MeanBenefit returns the average benefit across all epochs.
func (t *Trace) MeanBenefit() float64 {
	if len(t.Reports) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Reports {
		s += r.Benefit
	}
	return s / float64(len(t.Reports))
}

// Options tunes the controller.
type Options struct {
	ReplanEvery int // re-run the scheduler every k epochs (default 5)
	Workers     int // parallel per-server evaluators (default N)
	// ReplanOnDrop additionally triggers a replan whenever the measured
	// benefit falls more than this amount below the best benefit seen
	// since the last replan (0 = disabled). This is event-driven
	// adaptation: react to content drift instead of waiting for the clock.
	ReplanOnDrop float64
}

// Controller drives the online loop.
type Controller struct {
	Sys   *objective.System
	Sched Scheduler
	Truth objective.Preference // scoring preference for the trace
	Norm  objective.Normalizer
	Opt   Options
	// Obs, when non-nil, receives one "epoch" event per epoch (benefit,
	// jitter, drift magnitude, replan cause), a "replan" span around every
	// scheduler invocation, per-server DES utilization/jitter events, and
	// the runtime_* metrics of the recorder's registry. Nil disables
	// telemetry at zero cost.
	Obs *obs.Recorder
}

// ErrNoDecision is returned when the first scheduling attempt fails — the
// controller cannot run without an initial decision.
var ErrNoDecision = errors.New("runtime: scheduler produced no initial decision")

// Run executes the control loop for the given number of epochs. Each epoch
// the running decision is evaluated against content-drifted clips with one
// goroutine per server (fan-out/fan-in); on replan epochs the scheduler
// sees the drifted system. Cancelling ctx stops the loop early and returns
// the partial trace.
func (c *Controller) Run(ctx context.Context, epochs int) (*Trace, error) {
	opt := c.Opt
	if opt.ReplanEvery <= 0 {
		opt.ReplanEvery = 5
	}
	if opt.Workers <= 0 {
		opt.Workers = c.Sys.N()
	}

	reg := c.Obs.Registry()
	epochsTotal := reg.Counter("runtime_epochs_total")
	replansTotal := reg.Counter("runtime_replans_total")
	replansDrop := reg.Counter("runtime_replans_drop_total")
	replansFailed := reg.Counter("runtime_replans_failed_total")
	benefitGauge := reg.Gauge("runtime_benefit")
	driftGauge := reg.Gauge("runtime_drift")
	jitterHist := reg.Histogram("runtime_epoch_jitter_seconds", obs.DefBuckets)

	trace := &Trace{}
	var current eva.Decision
	haveDecision := false
	bestSinceReplan := 0.0
	dropPending := false
	for epoch := 0; epoch < epochs; epoch++ {
		select {
		case <-ctx.Done():
			return trace, ctx.Err()
		default:
		}
		drifted := c.driftedSystem(epoch)
		drift := c.driftMagnitude(epoch)
		replanned := false
		dropTriggered := dropPending
		if !haveDecision || epoch%opt.ReplanEvery == 0 || dropPending {
			sp := c.Obs.StartSpan("replan",
				obs.F("epoch", float64(epoch)),
				obs.F("drop_triggered", boolField(dropTriggered)),
				obs.F("drift", drift))
			d, err := c.Sched.Decide(drifted, epoch)
			sp.Field("failed", boolField(err != nil))
			sp.End()
			if err == nil {
				current = d
				haveDecision = true
				replanned = true
				dropPending = false
				bestSinceReplan = math.Inf(-1)
				replansTotal.Inc()
				if dropTriggered {
					replansDrop.Inc()
				}
			} else if !haveDecision {
				return trace, fmt.Errorf("%w: %v", ErrNoDecision, err)
			} else {
				// A failed replan keeps the previous decision running.
				replansFailed.Inc()
			}
		}
		out, jitter := c.evaluateParallel(drifted, current, opt.Workers)
		benefit := c.Truth.Benefit(c.Norm.Normalize(out))
		if benefit > bestSinceReplan {
			bestSinceReplan = benefit
		}
		if opt.ReplanOnDrop > 0 && bestSinceReplan-benefit > opt.ReplanOnDrop {
			dropPending = true
		}
		trace.Reports = append(trace.Reports, EpochReport{
			Epoch:     epoch,
			Outcome:   out,
			Benefit:   benefit,
			MaxJitter: jitter,
			Replanned: replanned,
		})
		epochsTotal.Inc()
		benefitGauge.Set(benefit)
		driftGauge.Set(drift)
		jitterHist.Observe(jitter)
		c.Obs.Event("epoch",
			obs.F("epoch", float64(epoch)),
			obs.F("benefit", benefit),
			obs.F("max_jitter", jitter),
			obs.F("drift", drift),
			obs.F("replanned", boolField(replanned)),
			obs.F("drop_pending", boolField(dropPending)))
	}
	return trace, nil
}

func boolField(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// driftMagnitude quantifies how far the clips' content difficulty has
// moved from baseline at the epoch's virtual time: the mean of
// |ContentDifficulty(t) − 1| across clips. It is what the epoch events and
// the runtime_drift gauge report, so a replan can be correlated with the
// content move that caused it.
func (c *Controller) driftMagnitude(epoch int) float64 {
	if len(c.Sys.Clips) == 0 {
		return 0
	}
	t := float64(epoch) * EpochSeconds
	var sum float64
	for _, clip := range c.Sys.Clips {
		sum += math.Abs(clip.ContentDifficulty(t) - 1)
	}
	return sum / float64(len(c.Sys.Clips))
}

// driftedSystem returns a copy of the system whose clips reflect the
// content difficulty at the epoch's virtual time.
func (c *Controller) driftedSystem(epoch int) *objective.System {
	t := float64(epoch) * EpochSeconds
	clips := make([]*videosim.Clip, len(c.Sys.Clips))
	for i, clip := range c.Sys.Clips {
		clips[i] = clip.Drifted(t)
	}
	return &objective.System{Clips: clips, Servers: c.Sys.Servers}
}

// evaluateParallel measures the decision's outcomes on the drifted system,
// simulating each server in its own goroutine and merging the results.
func (c *Controller) evaluateParallel(sys *objective.System, d eva.Decision, workers int) (objective.Vector, float64) {
	// The decision's stream parameters were planned against possibly-stale
	// content: re-derive true per-frame cost from the drifted clips while
	// keeping the decision's periods and placement.
	streams := append([]sched.Stream(nil), d.Streams...)
	for i := range streams {
		clip := sys.Clips[streams[i].Video]
		cfg := d.Configs[streams[i].Video]
		streams[i].Proc = clip.ProcTimeOf(cfg)
		streams[i].Bits = clip.BitsOf(cfg)
	}

	var v objective.Vector
	m := float64(sys.M())
	for i, clip := range sys.Clips {
		cfg := d.Configs[i]
		v[objective.Accuracy] += clip.Accuracy(cfg) / m
		v[objective.Network] += clip.Bandwidth(cfg)
		v[objective.Compute] += clip.Compute(cfg)
		v[objective.Energy] += clip.Power(cfg)
	}

	// Fan out one simulation per server.
	type serverResult struct {
		latSum float64
		frames int
		jitter float64
	}
	results := make([]serverResult, sys.N())
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for j := range sys.Servers {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var specs []cluster.StreamSpec
			for i, a := range d.Assign {
				if a != j {
					continue
				}
				off := 0.0
				if d.Offsets != nil {
					off = d.Offsets[i]
				}
				specs = append(specs, cluster.StreamSpec{
					Period: streams[i].Period.Float(),
					Offset: off,
					Proc:   streams[i].Proc,
					Bits:   streams[i].Bits,
				})
			}
			res := cluster.SimulateServerRecorded(specs, sys.Servers[j], eva.EvalHorizon, c.Obs, j)
			for _, f := range res.Frames {
				results[j].latSum += f.Latency()
				results[j].frames++
			}
			results[j].jitter = res.MaxJitter
		}(j)
	}
	wg.Wait()

	var latSum float64
	var frames int
	var jitter float64
	for _, r := range results {
		latSum += r.latSum
		frames += r.frames
		if r.jitter > jitter {
			jitter = r.jitter
		}
	}
	if frames > 0 {
		v[objective.Latency] = latSum / float64(frames)
	}
	return v, jitter
}
