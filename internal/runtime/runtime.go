// Package runtime is the online control plane of the EVA system (Section
// 2.1's loop made concrete): camera and server agents report status over
// channels, a controller periodically collects it, re-plans through a
// pluggable scheduler when content drift degrades the running decision,
// and dispatches new configurations. Epochs are virtual time; all
// concurrency is real.
//
// The controller is fault-tolerant: an optional fault.Injector crashes
// and recovers servers, stalls cameras, and degrades uplinks at epoch
// granularity; topology changes force an immediate replan on the
// survivors, every scheduler call runs under a context deadline with
// bounded retry + exponential backoff, and when Algorithm 1 turns
// infeasible on the shrunken cluster a degradation policy sheds or
// downgrades streams until a feasible zero-jitter plan exists.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// EpochSeconds is the wall-clock length one epoch represents.
const EpochSeconds = 60.0

// Scheduler produces a decision for the system as it looks at a given
// epoch. Implementations must honour ctx cancellation promptly; the
// controller abandons calls that outlive their deadline.
type Scheduler interface {
	Decide(ctx context.Context, sys *objective.System, epoch int) (eva.Decision, error)
}

// MaskAware is an optional Scheduler extension for planners that can
// natively plan onto a subset of the servers. healthy is a per-server
// liveness mask over sys.Servers (nil = all up); the returned decision's
// Assign must use the full physical index space and only healthy servers.
// Schedulers without this extension are given a compacted view of the
// cluster and their assignments are remapped by the controller.
type MaskAware interface {
	Scheduler
	DecideMasked(ctx context.Context, sys *objective.System, healthy []bool, epoch int) (eva.Decision, error)
}

// HealthSource is where the control loop learns the cluster's condition at
// each epoch boundary: Advance applies (or infers) this epoch's topology
// changes and returns them as fault events, State reports the resulting
// cluster view. *fault.Injector satisfies it directly — that is the scripted
// oracle the in-process loop uses — while the distributed control plane
// substitutes heartbeat-inferred liveness (internal/ctlplane), so the same
// replan/degradation machinery runs whether faults are known or deduced.
type HealthSource interface {
	Advance(epoch int) []fault.Event
	State() fault.State
}

// ServerEvalResult is one server's contribution to an epoch evaluation: the
// per-frame latency sum and frame count of its simulated (or measured)
// workload, plus its worst inter-frame jitter. The controller merges these
// exactly as it merges its own in-process DES results, so a remote evaluator
// returning bit-identical numbers yields a bit-identical trace.
type ServerEvalResult struct {
	LatSum    float64
	Frames    int
	MaxJitter float64
}

// ServerEvaluator runs one server's epoch evaluation somewhere else — over
// the wire on an edge agent, in the distributed control plane. The specs
// slice is only valid for the duration of the call; implementations that
// retain it (to serialize later) must copy. An error means the server
// produced no measurement this epoch: the controller records an eval
// failure and scores the server as contributing nothing, the same as a
// crashed server.
type ServerEvaluator interface {
	EvaluateServer(ctx context.Context, epoch, server int, specs []cluster.StreamSpec, srv cluster.Server, horizon float64) (ServerEvalResult, error)
}

// StreamOp is one stream registration or deregistration, applied at an
// epoch boundary before that epoch's replan. Add appends a new video source
// to the system; Remove drops the clip with the given name. Either way the
// controller invalidates the running decision and forces a full replan —
// the decision's per-video shapes no longer match the system.
type StreamOp struct {
	Add    *videosim.Clip
	Remove string
}

// OpSource feeds stream churn into the control loop: Drain is called once
// per epoch, before fault advancement and replanning, and returns the ops
// to apply this epoch. After applying ops the controller rebuilds its
// normalizer with objective.NewNormalizer, so benefit values are comparable
// only within a fixed stream set.
type OpSource interface {
	Drain(epoch int) []StreamOp
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(ctx context.Context, sys *objective.System, epoch int) (eva.Decision, error)

// Decide implements Scheduler.
func (f SchedulerFunc) Decide(ctx context.Context, sys *objective.System, epoch int) (eva.Decision, error) {
	return f(ctx, sys, epoch)
}

// EpochReport is the controller's record of one epoch.
type EpochReport struct {
	Epoch     int
	Outcome   objective.Vector // measured under the drifted content
	Benefit   float64          // truth-scored benefit (for the trace owner)
	MaxJitter float64
	Replanned bool // a new decision was installed this epoch

	// ReplanFailed marks an epoch whose scheduler invocation errored (after
	// retries) so the previous decision kept running; DropTriggered marks a
	// replan caused by the benefit-drop trigger rather than the clock. They
	// make traces self-contained — previously only metrics recorded these.
	ReplanFailed  bool
	DropTriggered bool

	// Fault-tolerance record. Degraded means the installed decision came
	// from the degradation policy; Shed/Downgraded are its victim videos.
	// Stalled lists cameras producing no frames this epoch, HealthyServers
	// counts servers up, FaultEvents counts injected events applied this
	// epoch, DecideAttempts counts scheduler invocations (0 = no replan
	// due), and ServerStreams is the number of live streams per physical
	// server under the running decision.
	Degraded       bool
	Shed           []int
	Downgraded     []int
	Stalled        []int
	HealthyServers int
	FaultEvents    int
	DecideAttempts int
	ServerStreams  []int
}

// Trace is the full run history.
type Trace struct {
	Reports []EpochReport
}

// MeanBenefit returns the average benefit across all epochs.
func (t *Trace) MeanBenefit() float64 {
	if len(t.Reports) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Reports {
		s += r.Benefit
	}
	return s / float64(len(t.Reports))
}

// Options tunes the controller.
type Options struct {
	ReplanEvery int // re-run the scheduler every k epochs (default 5)
	Workers     int // parallel per-server evaluators (default N)
	// ReplanOnDrop additionally triggers a replan whenever the measured
	// benefit falls more than this amount below the best benefit seen
	// since the last replan (0 = disabled). This is event-driven
	// adaptation: react to content drift instead of waiting for the clock.
	ReplanOnDrop float64
	// DecideTimeout bounds every individual scheduler invocation
	// (0 = unbounded). When the deadline fires the attempt is abandoned —
	// the call's goroutine is left to finish on its own and its result is
	// discarded — and the retry/backoff path takes over, so a hung
	// scheduler cannot stall the control loop.
	DecideTimeout time.Duration
	// DecideRetries is how many extra attempts a failed decide gets
	// (default 1; negative disables retries). Infeasibility is not
	// retried — it goes straight to the degradation policy.
	DecideRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent retry (default 10ms).
	RetryBackoff time.Duration
	// BackoffJitter spreads each retry delay by a deterministic ±20%
	// multiplicative factor derived from (BackoffSeed, epoch, try) — pure
	// doubling synchronizes retry storms across concurrent deciders that
	// fail together, jitter decorrelates them without giving up
	// reproducibility. Off by default so existing traces stay byte-exact;
	// the wire client (internal/ctlplane) runs its transport backoff
	// jittered by default.
	BackoffJitter bool
	// BackoffSeed decorrelates the jitter streams of concurrent deciders;
	// any per-controller value works (0 is fine for a single controller).
	BackoffSeed uint64
	// Incremental enables the amortized replan fast path: when the running
	// decision is a full-capacity zero-jitter plan, a replan epoch first
	// tries to keep its configurations and grouping and re-solve only the
	// group→server assignment against the drifted costs and surviving
	// servers (sched.Replanner). The fast path is taken only when the exact
	// feasibility conditions still hold; otherwise the scheduler runs as
	// usual. Off by default: incremental plans freeze the configuration
	// search, trading plan optimality for replan latency.
	Incremental bool
	// FullResolveEvery, with Incremental on, forces every k-th epoch's
	// replan to skip the fast path and invoke the scheduler from scratch —
	// a periodic configuration refresh. Incremental replans keep the
	// frozen configurations forever; under stream churn and content drift
	// the frozen choice decays, so long-running deployments alternate
	// cheap incremental epochs with an occasional full re-optimization
	// (which also re-profiles arrivals admitted on borrowed
	// configurations, warm-starting their outcome models from the bank).
	// 0 disables the refresh.
	FullResolveEvery int
	// Shards > 1 routes replans through the sharded control plane when the
	// scheduler implements CellDecider: videos are partitioned into cells,
	// each cell decides its configurations concurrently, and placement is
	// solved by per-cell proposals committed through the shared-state
	// arbiter (internal/shard). The default 1 keeps the serial decide path
	// — and therefore every existing golden trace — byte-exact.
	Shards int
	// Check, when non-nil, audits the control loop: every installed
	// decision — scheduler-produced or degraded — is verified against the
	// exact feasibility constraints under its *planned* processing times
	// (violations are scheduler bugs; under a strict checker they abort the
	// run), while the per-epoch re-evaluation under the drifted true
	// processing times and the simulated jitter are audited through the
	// checker's relaxed view (violations there are model error by design
	// and only surface as check_* metrics).
	Check *check.Checker
}

// Controller drives the online loop.
type Controller struct {
	Sys   *objective.System
	Sched Scheduler
	Truth objective.Preference // scoring preference for the trace
	Norm  objective.Normalizer
	Opt   Options
	// Faults, when non-nil, injects the scripted failures into the loop:
	// decisions are planned around down servers, stalled cameras produce
	// no frames, and degraded links shrink the drifted system's uplinks.
	Faults *fault.Injector
	// Health, when non-nil, replaces Faults as the loop's view of cluster
	// condition. Where Faults is a scripted oracle, Health may be inferred —
	// the distributed control plane plugs in heartbeat-based liveness here —
	// and the loop cannot tell the difference: the same forced-replan and
	// degradation machinery runs either way.
	Health HealthSource
	// Eval, when non-nil, delegates each healthy server's epoch evaluation
	// instead of simulating it in-process: the distributed control plane
	// dispatches the server's stream specs to its edge agent and merges the
	// returned measurements. A nil Eval keeps the in-process DES.
	Eval ServerEvaluator
	// Ops, when non-nil, feeds stream register/deregister churn into the
	// loop at epoch boundaries; any applied op invalidates the running
	// decision and forces a full replan.
	Ops OpSource
	// Obs, when non-nil, receives one "epoch" event per epoch (benefit,
	// jitter, drift magnitude, replan cause), a "replan" span around every
	// scheduler invocation, "fault_*" and "degraded" events, per-server DES
	// utilization/jitter events, and the runtime_*/fault_* metrics of the
	// recorder's registry. Nil disables telemetry at zero cost.
	Obs *obs.Recorder

	// Reusable per-server evaluation state: one simulation arena and one
	// spec buffer per physical server, grown lazily by evaluateParallel.
	// Index j is touched only by server j's goroutine within an epoch and
	// epochs are fan-in barriers, so no extra synchronization is needed.
	arenas      []*cluster.Arena
	specBufs    [][]cluster.StreamSpec
	evalStreams []sched.Stream
}

// ErrNoDecision is returned when the first scheduling attempt fails — the
// controller cannot run without an initial decision.
var ErrNoDecision = errors.New("runtime: scheduler produced no initial decision")

// Run executes the control loop for the given number of epochs. Each epoch
// the running decision is evaluated against content-drifted clips with one
// goroutine per healthy server (fan-out/fan-in); on replan epochs the
// scheduler sees the drifted, fault-masked system. Cancelling ctx stops
// the loop early and returns the partial trace.
func (c *Controller) Run(ctx context.Context, epochs int) (*Trace, error) {
	opt := c.Opt
	if opt.ReplanEvery <= 0 {
		opt.ReplanEvery = 5
	}
	if opt.Workers <= 0 {
		opt.Workers = c.Sys.N()
	}

	reg := c.Obs.Registry()
	epochsTotal := reg.Counter("runtime_epochs_total")
	replansTotal := reg.Counter("runtime_replans_total")
	replansDrop := reg.Counter("runtime_replans_drop_total")
	replansFailed := reg.Counter("runtime_replans_failed_total")
	replansForced := reg.Counter("runtime_replans_forced_total")
	replansIncremental := reg.Counter("runtime_replans_incremental_total")
	degradedEpochs := reg.Counter("runtime_degraded_epochs_total")
	degradedStreams := reg.Gauge("runtime_degraded_streams")
	benefitGauge := reg.Gauge("runtime_benefit")
	driftGauge := reg.Gauge("runtime_drift")
	jitterHist := reg.Histogram("runtime_epoch_jitter_seconds", obs.DefBuckets)
	churnOps := reg.Counter("runtime_churn_ops_total")
	churnEpochs := reg.Counter("runtime_churn_epochs_total")
	churnFast := reg.Counter("runtime_churn_fast_total")
	churnResolve := reg.Counter("runtime_churn_resolve_total")
	faultEventsTotal := reg.Counter("fault_events_total")
	serversDownGauge := reg.Gauge("fault_servers_down")
	camerasStalledGauge := reg.Gauge("fault_cameras_stalled")
	linksDegradedGauge := reg.Gauge("fault_links_degraded")

	n := c.Sys.N()
	trace := &Trace{}
	rp := sched.NewReplanner()
	rp.SetRecorder(c.Obs)
	var current eva.Decision
	haveDecision := false
	bestSinceReplan := 0.0
	dropPending := false
	for epoch := 0; epoch < epochs; epoch++ {
		select {
		case <-ctx.Done():
			return trace, ctx.Err()
		default:
		}

		// The epoch span roots this epoch's trace: every decide attempt,
		// shard round, cell proposal, replan, and per-server DES run nests
		// under it via the context. Early-return error paths leave it
		// un-emitted, which is fine — an aborted epoch has no duration.
		ectx, esp := c.Obs.StartSpanCtx(ctx, "epoch", obs.F("epoch", float64(epoch)))

		// Stream churn first: register/deregister ops change the system the
		// rest of the epoch (fault masks, replan, evaluation) must see. With
		// the incremental option on, churn tries the admit/evict fast path —
		// departures shrink the frozen grouping, arrivals slot into groups
		// whose exact Const2 budget still holds, and this epoch's replan runs
		// incrementally. Any decline falls back to invalidating the decision
		// (a full resolve), exactly the pre-incremental behaviour.
		churned := false
		churnWarm := false
		if c.Ops != nil {
			if ops := c.Ops.Drain(epoch); len(ops) > 0 {
				churned = true
				churnOps.Add(uint64(len(ops)))
				churnEpochs.Inc()
				removes, adds := splitStreamOps(ops)
				if opt.Incremental && haveDecision {
					mask := c.healthSource().State().Healthy()
					if d, ok := c.churnAdmitEvict(rp, removes, adds, current, mask); ok {
						current = d
						churnWarm = true
					}
				}
				if !churnWarm {
					c.applyCanonicalOps(removes, adds)
					haveDecision = false
					rp.Invalidate()
				}
				n = c.Sys.N()
				c.Obs.EventCtx(ectx, "stream_churn",
					obs.F("epoch", float64(epoch)),
					obs.F("ops", float64(len(ops))),
					obs.F("warm", boolField(churnWarm)),
					obs.F("videos", float64(c.Sys.M())))
			}
		}

		// Apply this epoch's faults — scripted by the injector oracle, or
		// inferred by the health source — and read the cluster state.
		hs := c.healthSource()
		events := hs.Advance(epoch)
		st := hs.State()
		healthy := st.Healthy() // nil = no injector / all up
		stalledCams := st.StalledCameras()
		nHealthy := n
		if healthy != nil {
			nHealthy = st.NumHealthy()
		}
		for _, e := range events {
			faultEventsTotal.Inc()
			c.Obs.EventCtx(ectx, "fault_"+string(e.Action),
				obs.F("epoch", float64(epoch)),
				obs.F("action", fault.ActionCode(e.Action)),
				obs.F("target", float64(e.Target)),
				obs.F("factor", e.Factor))
		}
		if st.Down != nil {
			serversDownGauge.Set(float64(n - nHealthy))
			camerasStalledGauge.Set(float64(len(stalledCams)))
			linksDegradedGauge.Set(countDegradedLinks(st.LinkScale))
		}
		topologyChanged := len(events) > 0

		drifted := c.driftedSystem(epoch)
		applyLinkScales(drifted, st.LinkScale)
		drift := c.driftMagnitude(epoch)

		replanned := false
		replanFailed := false
		degraded := false
		infeasible := false
		attempts := 0
		var sstats shard.Stats
		dropTriggered := dropPending
		if !haveDecision || epoch%opt.ReplanEvery == 0 || dropPending || topologyChanged || churned {
			if topologyChanged {
				replansForced.Inc()
			}
			incInstalled := false
			fullDue := opt.FullResolveEvery > 0 && epoch > 0 && epoch%opt.FullResolveEvery == 0
			if opt.Incremental && haveDecision && !fullDue {
				if d, ok := c.incrementalReplan(ectx, rp, drifted, current, healthy); ok && decisionValid(d, healthy, n) == nil {
					if verr := opt.Check.VerifyDecisionServers(d, c.Sys.Servers); verr != nil {
						return trace, fmt.Errorf("runtime: epoch %d: incremental decision: %w", epoch, verr)
					}
					current = d
					replanned = true
					dropPending = false
					bestSinceReplan = math.Inf(-1)
					replansTotal.Inc()
					replansIncremental.Inc()
					if dropTriggered {
						replansDrop.Inc()
					}
					incInstalled = true
					c.Obs.EventCtx(ectx, "replan_incremental",
						obs.F("epoch", float64(epoch)),
						obs.F("drop_triggered", boolField(dropTriggered)),
						obs.F("healthy_servers", float64(nHealthy)),
						obs.F("drift", drift))
				}
			}
			if !incInstalled {
				rctx, sp := c.Obs.StartSpanCtx(ectx, "replan",
					obs.F("epoch", float64(epoch)),
					obs.F("drop_triggered", boolField(dropTriggered)),
					obs.F("healthy_servers", float64(nHealthy)),
					obs.F("drift", drift))
				d, tries, stats, err := c.decide(rctx, drifted, healthy, epoch, opt)
				attempts = tries
				sstats = stats
				sp.Field("failed", boolField(err != nil))
				sp.Field("attempts", float64(tries))
				sp.End()
				switch {
				case err == nil:
					if verr := opt.Check.VerifyDecisionServers(d, c.Sys.Servers); verr != nil {
						return trace, fmt.Errorf("runtime: epoch %d: scheduler decision: %w", epoch, verr)
					}
					current = d
					haveDecision = true
					replanned = true
					dropPending = false
					bestSinceReplan = math.Inf(-1)
					replansTotal.Inc()
					if dropTriggered {
						replansDrop.Inc()
					}
					if opt.Incremental {
						adoptIncremental(rp, d, n)
					}
				case ctx.Err() != nil:
					return trace, ctx.Err()
				case errors.Is(err, sched.ErrInfeasible):
					// Capacity shrank below what the full workload needs:
					// shed/downgrade below instead of keeping a stale plan.
					infeasible = true
				case !haveDecision:
					return trace, fmt.Errorf("%w: %v", ErrNoDecision, err)
				default:
					// A failed replan keeps the previous decision running.
					replanFailed = true
					replansFailed.Inc()
				}
			}
			if churned {
				// A churn epoch "avoids a full resolve" exactly when the
				// admit/evict fast path held AND the incremental replan
				// installed — the hit rate the churn bench gates on.
				if churnWarm && incInstalled {
					churnFast.Inc()
				} else {
					churnResolve.Inc()
				}
			}
		}

		// Graceful degradation: when the workload no longer fits the
		// surviving servers, or the running decision references a dead
		// server (e.g. the forced replan timed out), shed or downgrade
		// streams until a feasible zero-jitter plan exists.
		if infeasible || (haveDecision && decisionValid(current, healthy, n) != nil) {
			base := defaultConfigs(c.Sys.M())
			if haveDecision {
				base = current.Configs
			}
			current = c.degrade(drifted, healthy, base, current.Shed, current.Downgraded)
			if verr := opt.Check.VerifyDecisionServers(current, c.Sys.Servers); verr != nil {
				return trace, fmt.Errorf("runtime: epoch %d: degraded decision: %w", epoch, verr)
			}
			haveDecision = true
			replanned = true
			degraded = true
			dropPending = false
			bestSinceReplan = math.Inf(-1)
			rp.Invalidate() // degraded configs are not an incremental baseline
			degradedEpochs.Inc()
			c.Obs.EventCtx(ectx, "degraded",
				obs.F("epoch", float64(epoch)),
				obs.F("shed", float64(len(current.Shed))),
				obs.F("downgraded", float64(len(current.Downgraded))))
		}
		degradedStreams.Set(float64(len(current.Shed) + len(current.Downgraded)))

		out, jitter := c.evaluateParallel(ectx, epoch, drifted, current, opt.Workers, healthy, st.Stalled)
		if ctx.Err() != nil {
			return trace, ctx.Err()
		}
		// Jitter under the drifted true processing times: Theorem 1's offsets
		// were computed for the planned costs, so a drift-induced jitter is
		// model error, not a scheduler bug — audit it relaxed (metric-only).
		_ = opt.Check.Relaxed().ObserveJitter(jitter, current.ZeroJit)
		benefit := c.Truth.Benefit(c.Norm.Normalize(out))
		if err := opt.Check.Finite("epoch_benefit", benefit); err != nil {
			return trace, fmt.Errorf("runtime: epoch %d: %w", epoch, err)
		}
		if benefit > bestSinceReplan {
			bestSinceReplan = benefit
		}
		if opt.ReplanOnDrop > 0 && bestSinceReplan-benefit > opt.ReplanOnDrop {
			dropPending = true
		}
		trace.Reports = append(trace.Reports, EpochReport{
			Epoch:          epoch,
			Outcome:        out,
			Benefit:        benefit,
			MaxJitter:      jitter,
			Replanned:      replanned,
			ReplanFailed:   replanFailed,
			DropTriggered:  dropTriggered,
			Degraded:       degraded || current.IsDegraded(),
			Shed:           append([]int(nil), current.Shed...),
			Downgraded:     append([]int(nil), current.Downgraded...),
			Stalled:        stalledCams,
			HealthyServers: nHealthy,
			FaultEvents:    len(events),
			DecideAttempts: attempts,
			ServerStreams:  serverStreams(current, n, st.Stalled),
		})
		epochsTotal.Inc()
		benefitGauge.Set(benefit)
		driftGauge.Set(drift)
		jitterHist.Observe(jitter)
		c.Obs.EventCtx(ectx, "epoch",
			obs.F("epoch", float64(epoch)),
			obs.F("benefit", benefit),
			obs.F("max_jitter", jitter),
			obs.F("drift", drift),
			obs.F("replanned", boolField(replanned)),
			obs.F("replan_failed", boolField(replanFailed)),
			obs.F("degraded", boolField(degraded)),
			obs.F("healthy_servers", float64(nHealthy)),
			obs.F("drop_pending", boolField(dropPending)))

		// Benefit-attribution ledger: decompose planned−realized into the
		// loss buckets via counterfactual re-evaluations. Only when
		// telemetry is on — the counterfactuals are pure (no RNG, scratch
		// reset per call), so a recorded run's decisions and reports stay
		// bit-identical to a nil-recorder run.
		if c.Obs != nil {
			led := c.buildLedger(ectx, ledgerInput{
				epoch: epoch, drifted: drifted, d: current,
				healthy: healthy, stalledCams: stalledCams,
				realized: benefit, stats: sstats,
				replanFailed: replanFailed, degraded: degraded || current.IsDegraded(),
				workers: opt.Workers,
			})
			c.Obs.RecordLedger(ectx, led)
			recordLedgerMetrics(reg, &led)
		}

		esp.Field("benefit", benefit)
		esp.Field("replanned", boolField(replanned))
		esp.Field("healthy_servers", float64(nHealthy))
		esp.End()
	}
	return trace, nil
}

// decide invokes the scheduler under the configured per-attempt deadline
// with bounded retry + exponential backoff, planning around down servers.
// The returned decision is validated and always uses the full physical
// server index space. It returns the number of attempts made plus the
// sharded-solve stats aggregated across attempts (zero when the serial
// path ran). Retrying stops early on infeasibility (deterministic — the
// degradation policy is the answer, not another attempt) and on
// parent-context cancellation.
func (c *Controller) decide(ctx context.Context, sys *objective.System, healthy []bool, epoch int, opt Options) (eva.Decision, int, shard.Stats, error) {
	retries := opt.DecideRetries
	if retries == 0 {
		retries = 1
	} else if retries < 0 {
		retries = 0
	}
	backoff := opt.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	retryCounter := c.Obs.Registry().Counter("runtime_decide_retries_total")

	attempts := 0
	var agg shard.Stats
	var lastErr error
	for try := 0; try <= retries; try++ {
		if try > 0 {
			retryCounter.Inc()
			delay := backoff
			if opt.BackoffJitter {
				delay = backoffWithJitter(backoff, opt.BackoffSeed, epoch, try)
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return eva.Decision{}, attempts, agg, ctx.Err()
			}
			backoff *= 2
		}
		attempts++
		actx, asp := c.Obs.StartSpanCtx(ctx, "decide_attempt",
			obs.F("epoch", float64(epoch)),
			obs.F("try", float64(try)))
		d, stats, err := c.decideOnce(actx, sys, healthy, epoch, opt)
		asp.Field("failed", boolField(err != nil))
		asp.End()
		mergeShardStats(&agg, stats)
		if err == nil {
			return d, attempts, agg, nil
		}
		lastErr = err
		if errors.Is(err, sched.ErrInfeasible) || ctx.Err() != nil {
			break
		}
	}
	return eva.Decision{}, attempts, agg, lastErr
}

// mergeShardStats accumulates a decide attempt's sharded-solve stats into
// the per-epoch aggregate the ledger records: counts add up across retried
// attempts, flags OR, and the per-cell retry vector of the latest solve
// wins (it describes the attempt whose plan was installed).
func mergeShardStats(agg *shard.Stats, s shard.Stats) {
	if s.Shards == 0 {
		return
	}
	agg.Shards = s.Shards
	agg.Rounds += s.Rounds
	agg.Conflicts += s.Conflicts
	agg.Retries += s.Retries
	agg.Commits += s.Commits
	agg.FellBack = agg.FellBack || s.FellBack
	if s.CellRetries != nil {
		agg.CellRetries = s.CellRetries
	}
}

// decideOnce runs a single scheduler invocation under the decide deadline.
// Mask-aware schedulers get the full system plus the liveness mask; others
// get a compacted view of the healthy servers and their assignments are
// remapped back to physical indices. The call runs in its own goroutine so
// a scheduler that ignores cancellation is abandoned when the deadline
// fires rather than blocking the loop.
func (c *Controller) decideOnce(ctx context.Context, sys *objective.System, healthy []bool, epoch int, opt Options) (eva.Decision, shard.Stats, error) {
	dctx := ctx
	cancel := func() {}
	if opt.DecideTimeout > 0 {
		dctx, cancel = context.WithTimeout(ctx, opt.DecideTimeout)
	}
	defer cancel()

	type result struct {
		d     eva.Decision
		stats shard.Stats
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		// The pprof phase label makes abandoned-but-still-running decide
		// goroutines attributable in CPU profiles; the stats travel through
		// the channel (never a Controller field) because an abandoned
		// attempt may still be writing after the loop has moved on.
		c.Obs.Do(dctx, "decide", func(dctx context.Context) {
			var r result
			if opt.Shards > 1 {
				if cd, ok := c.Sched.(CellDecider); ok {
					r.d, r.stats, r.err = c.decideSharded(dctx, cd, sys, healthy, epoch, opt)
					ch <- r
					return
				}
			}
			switch {
			case maskTrivial(healthy):
				r.d, r.err = c.Sched.Decide(dctx, sys, epoch)
			default:
				if ma, ok := c.Sched.(MaskAware); ok {
					r.d, r.err = ma.DecideMasked(dctx, sys, healthy, epoch)
				} else {
					view, phys := maskView(sys, healthy)
					r.d, r.err = c.Sched.Decide(dctx, view, epoch)
					if r.err == nil {
						r.d, r.err = remapDecision(r.d, phys)
					}
				}
			}
			ch <- r
		})
	}()
	select {
	case r := <-ch:
		if r.err == nil {
			if err := decisionValid(r.d, healthy, sys.N()); err != nil {
				return eva.Decision{}, r.stats, err
			}
		}
		return r.d, r.stats, r.err
	case <-dctx.Done():
		// The attempt's goroutine is abandoned from here: it keeps running
		// until the scheduler notices cancellation (or finishes), but its
		// result goes into the buffered channel nobody reads again — it can
		// never install a decision. Count the abandonment; the timeout
		// counter stays gated on the parent context so a cancelled run is
		// not misread as a hung scheduler.
		c.Obs.Registry().Counter("runtime_decide_abandoned_total").Inc()
		if ctx.Err() == nil {
			c.Obs.Registry().Counter("runtime_decide_timeouts_total").Inc()
		}
		return eva.Decision{}, shard.Stats{}, dctx.Err()
	}
}

// healthSource resolves the loop's cluster-condition feed: an explicit
// Health source wins, otherwise the fault injector oracle (whose methods
// are nil-safe, so a fault-free controller needs neither).
func (c *Controller) healthSource() HealthSource {
	if c.Health != nil {
		return c.Health
	}
	return c.Faults
}

// applyStreamOps rebuilds the controller's system for this epoch's stream
// churn in canonical order — all deregisters first, then all registers,
// each phase name-sorted (see splitStreamOps) — so the outcome is
// independent of Drain's slice order.
func (c *Controller) applyStreamOps(ops []StreamOp) {
	removes, adds := splitStreamOps(ops)
	c.applyCanonicalOps(removes, adds)
}

// applyCanonicalOps applies an already-canonicalized op batch: removals
// drop clips by name, additions append. The clip slice is copied (callers
// may hold the old system) and the benefit normalizer is rebuilt — benefit
// values are comparable only within a fixed stream set.
func (c *Controller) applyCanonicalOps(removes []string, adds []*videosim.Clip) {
	clips := append([]*videosim.Clip(nil), c.Sys.Clips...)
	for _, name := range removes {
		for i, clip := range clips {
			if clip.Name == name {
				clips = append(clips[:i], clips[i+1:]...)
				break
			}
		}
	}
	clips = append(clips, adds...)
	c.Sys = &objective.System{Clips: clips, Servers: c.Sys.Servers}
	c.Norm = objective.NewNormalizer(c.Sys)
}

// backoffWithJitter spreads a retry delay by a deterministic ±20%
// multiplicative factor. The factor is drawn from a SplitMix64 stream keyed
// on (seed, epoch, try), so concurrent deciders with distinct seeds
// desynchronize while any single run stays exactly reproducible.
func backoffWithJitter(d time.Duration, seed uint64, epoch, try int) time.Duration {
	u := stats.SplitMix64(seed ^ uint64(epoch)*0x9E3779B97F4A7C15 ^ uint64(try))
	// Top 53 bits → uniform in [0,1); map into [0.8, 1.2).
	f := 0.8 + 0.4*float64(u>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

// maskTrivial reports whether the liveness mask imposes no restriction.
func maskTrivial(healthy []bool) bool {
	for _, ok := range healthy {
		if !ok {
			return false
		}
	}
	return true
}

// maskView builds a compacted system containing only the healthy servers,
// plus the compact-to-physical index table.
func maskView(sys *objective.System, healthy []bool) (*objective.System, []int) {
	var phys []int
	var servers []cluster.Server
	for j, ok := range healthy {
		if ok {
			phys = append(phys, j)
			servers = append(servers, sys.Servers[j])
		}
	}
	return &objective.System{Clips: sys.Clips, Servers: servers}, phys
}

// remapDecision rewrites a decision planned against a compacted server
// view back into the full physical index space.
func remapDecision(d eva.Decision, phys []int) (eva.Decision, error) {
	out := d
	out.Assign = make([]int, len(d.Assign))
	for i, a := range d.Assign {
		if a < 0 || a >= len(phys) {
			return eva.Decision{}, fmt.Errorf("runtime: scheduler assigned stream %d to compact server %d of %d", i, a, len(phys))
		}
		out.Assign[i] = phys[a]
	}
	return out, nil
}

// decisionValid checks a decision against the current topology: shapes
// consistent, every assignment in range and on a healthy server.
func decisionValid(d eva.Decision, healthy []bool, n int) error {
	if len(d.Streams) != len(d.Assign) {
		return fmt.Errorf("runtime: %d streams vs %d assignments", len(d.Streams), len(d.Assign))
	}
	for i, a := range d.Assign {
		if a < 0 || a >= n {
			return fmt.Errorf("runtime: stream %d assigned to out-of-range server %d", i, a)
		}
		if healthy != nil && !healthy[a] {
			return fmt.Errorf("runtime: stream %d assigned to down server %d", i, a)
		}
	}
	return nil
}

// applyLinkScales multiplies the system's uplinks by the per-server link
// scales, copying the server slice so the caller's system is untouched.
func applyLinkScales(sys *objective.System, scales []float64) {
	if scales == nil {
		return
	}
	scaled := false
	for _, s := range scales {
		if s != 1 {
			scaled = true
			break
		}
	}
	if !scaled {
		return
	}
	servers := append([]cluster.Server(nil), sys.Servers...)
	for j := range servers {
		servers[j].Uplink *= scales[j]
	}
	sys.Servers = servers
}

func countDegradedLinks(scales []float64) float64 {
	n := 0.0
	for _, s := range scales {
		if s != 1 {
			n++
		}
	}
	return n
}

// serverStreams counts the live streams per physical server under the
// decision, excluding shed videos and stalled cameras.
func serverStreams(d eva.Decision, n int, stalled []bool) []int {
	out := make([]int, n)
	shed := d.ShedSet(len(d.Configs))
	for i, a := range d.Assign {
		if a < 0 || a >= n {
			continue
		}
		v := d.Streams[i].Video
		if shed != nil && v < len(shed) && shed[v] {
			continue
		}
		if stalled != nil && v < len(stalled) && stalled[v] {
			continue
		}
		out[a]++
	}
	return out
}

func boolField(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// driftMagnitude quantifies how far the clips' content difficulty has
// moved from baseline at the epoch's virtual time: the mean of
// |ContentDifficulty(t) − 1| across clips. It is what the epoch events and
// the runtime_drift gauge report, so a replan can be correlated with the
// content move that caused it.
func (c *Controller) driftMagnitude(epoch int) float64 {
	if len(c.Sys.Clips) == 0 {
		return 0
	}
	t := float64(epoch) * EpochSeconds
	var sum float64
	for _, clip := range c.Sys.Clips {
		sum += math.Abs(clip.ContentDifficulty(t) - 1)
	}
	return sum / float64(len(c.Sys.Clips))
}

// driftedSystem returns a copy of the system whose clips reflect the
// content difficulty at the epoch's virtual time.
func (c *Controller) driftedSystem(epoch int) *objective.System {
	t := float64(epoch) * EpochSeconds
	clips := make([]*videosim.Clip, len(c.Sys.Clips))
	for i, clip := range c.Sys.Clips {
		clips[i] = clip.Drifted(t)
	}
	return &objective.System{Clips: clips, Servers: c.Sys.Servers}
}

// evaluateParallel measures the decision's outcomes on the drifted system,
// simulating each healthy server in its own goroutine and merging the
// results. Shed videos and stalled cameras contribute nothing; a
// cancelled ctx makes remaining workers return without simulating, so a
// mid-epoch cancellation does not wait out every server.
func (c *Controller) evaluateParallel(ctx context.Context, epoch int, sys *objective.System, d eva.Decision, workers int, healthy []bool, stalled []bool) (objective.Vector, float64) {
	return c.evaluate(ctx, sys, d, workers, healthy, stalled, c.Obs, true, epoch, c.Eval)
}

// evaluate is evaluateParallel's engine with the telemetry and audit taps
// exposed: the real per-epoch evaluation passes (c.Obs, true, c.Eval); the
// ledger's counterfactual evaluations pass (nil, false, nil) so they perturb
// neither the DES metrics/events nor the relaxed checker's check_* counts,
// and always re-simulate locally (counterfactuals are hypotheticals — there
// is nothing to measure on a real agent). A non-nil ev replaces the
// in-process DES per server; an evaluator error scores that server as
// contributing nothing, like a crashed server.
func (c *Controller) evaluate(ctx context.Context, sys *objective.System, d eva.Decision, workers int, healthy []bool, stalled []bool, rec *obs.Recorder, audit bool, epoch int, ev ServerEvaluator) (objective.Vector, float64) {
	// The decision's stream parameters were planned against possibly-stale
	// content: re-derive true per-frame cost from the drifted clips while
	// keeping the decision's periods and placement.
	streams := append(c.evalStreams[:0], d.Streams...)
	c.evalStreams = streams
	for i := range streams {
		clip := sys.Clips[streams[i].Video]
		cfg := d.Configs[streams[i].Video]
		streams[i].Proc = clip.ProcTimeOf(cfg)
		streams[i].Bits = clip.BitsOf(cfg)
	}

	shed := d.ShedSet(sys.M())
	skipVideo := func(v int) bool {
		if shed != nil && v < len(shed) && shed[v] {
			return true
		}
		return stalled != nil && v < len(stalled) && stalled[v]
	}

	// Audit the deployed decision against the drifted TRUE costs through the
	// relaxed checker: the plan was feasible under its believed costs, so an
	// exact-constraint violation here is model error (content drifted under a
	// running plan), recorded as check_* metrics but never an error.
	if chk := c.Opt.Check; chk != nil && audit {
		var liveStreams []sched.Stream
		var liveAssign []int
		for i, s := range streams {
			if skipVideo(s.Video) {
				continue
			}
			liveStreams = append(liveStreams, s)
			liveAssign = append(liveAssign, d.Assign[i])
		}
		_ = chk.Relaxed().VerifyAssignmentServers(liveStreams, liveAssign, sys.Servers)
	}

	var v objective.Vector
	m := float64(sys.M())
	for i, clip := range sys.Clips {
		if skipVideo(i) {
			continue
		}
		cfg := d.Configs[i]
		v[objective.Accuracy] += clip.Accuracy(cfg) / m
		v[objective.Network] += clip.Bandwidth(cfg)
		v[objective.Compute] += clip.Compute(cfg)
		v[objective.Energy] += clip.Power(cfg)
	}

	// Fan out one simulation per healthy server. Each server owns a
	// long-lived arena and spec buffer (index j is only ever touched by
	// server j's goroutine, and wg.Wait barriers the epochs), so steady-state
	// evaluation reuses the frame logs instead of reallocating them.
	for len(c.arenas) < sys.N() {
		c.arenas = append(c.arenas, cluster.NewArena())
	}
	if len(c.specBufs) < sys.N() {
		bufs := make([][]cluster.StreamSpec, sys.N())
		copy(bufs, c.specBufs)
		c.specBufs = bufs
	}
	type serverResult struct {
		latSum float64
		frames int
		jitter float64
	}
	results := make([]serverResult, sys.N())
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for j := range sys.Servers {
		if healthy != nil && !healthy[j] {
			continue // down servers process nothing
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			select {
			case <-ctx.Done():
				return
			default:
			}
			specs := c.specBufs[j][:0]
			for i, a := range d.Assign {
				if a != j || skipVideo(streams[i].Video) {
					continue
				}
				off := 0.0
				if d.Offsets != nil {
					off = d.Offsets[i]
				}
				specs = append(specs, cluster.StreamSpec{
					Period: streams[i].Period.Float(),
					Offset: off,
					Proc:   streams[i].Proc,
					Bits:   streams[i].Bits,
				})
			}
			c.specBufs[j] = specs
			if ev != nil {
				// Remote evaluation: the agent owns the DES (or the real
				// measurement); the controller only merges its numbers. The
				// specs slice aliases c.specBufs[j] — the evaluator contract
				// requires implementations that retain it to copy.
				r, err := ev.EvaluateServer(ctx, epoch, j, specs, sys.Servers[j], eva.EvalHorizon)
				if err != nil {
					if rec != nil {
						rec.Registry().Counter("runtime_eval_failures_total").Inc()
						rec.EventCtx(ctx, "eval_failed",
							obs.F("epoch", float64(epoch)),
							obs.F("server", float64(j)))
					}
					return
				}
				results[j].latSum = r.LatSum
				results[j].frames = r.Frames
				results[j].jitter = r.MaxJitter
				return
			}
			var res cluster.Result
			if rec == nil {
				// Counterfactual / disabled-telemetry path: plain simulation,
				// no spans, no events, no added allocations.
				res = c.arenas[j].SimulateServer(specs, sys.Servers[j], eva.EvalHorizon)
			} else {
				rec.Do(ctx, "des", func(ctx context.Context) {
					sctx, sp := rec.StartSpanCtx(ctx, "des",
						obs.F("server", float64(j)),
						obs.F("streams", float64(len(specs))))
					res = c.arenas[j].SimulateServerRecordedCtx(sctx, specs, sys.Servers[j], eva.EvalHorizon, rec, j)
					sp.Field("frames", float64(len(res.Frames)))
					sp.End()
				})
			}
			for _, f := range res.Frames {
				results[j].latSum += f.Latency()
				results[j].frames++
			}
			results[j].jitter = res.MaxJitter
		}(j)
	}
	wg.Wait()

	var latSum float64
	var frames int
	var jitter float64
	for _, r := range results {
		latSum += r.latSum
		frames += r.frames
		if r.jitter > jitter {
			jitter = r.jitter
		}
	}
	if frames > 0 {
		v[objective.Latency] = latSum / float64(frames)
	}
	return v, jitter
}
