package runtime

import (
	"bytes"
	"context"
	goruntime "runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestTracedShardedRunWellFormed drives the sharded control plane (8 cells,
// GOMAXPROCS=8, faults mid-run) with a live recorder and then audits the
// whole emitted stream:
//
//   - span parentage is well-formed: every nonzero parent link resolves to
//     an emitted span, parents have smaller IDs than children (so links are
//     acyclic), and every parent chain reaches a root;
//   - events and ledgers attribute only to emitted spans;
//   - every epoch ledger's buckets sum to planned − realized with exact
//     float equality.
//
// Under -race this doubles as the concurrency audit of the trace plane:
// per-cell proposals, arbiter commits, and per-server DES spans all emit
// concurrently into one recorder.
func TestTracedShardedRunWellFormed(t *testing.T) {
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(8))

	sys := testSys(16, 8)
	sc := &fault.Scenario{Name: "race", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 3},
		{Epoch: 5, Action: fault.ServerUp, Target: 3},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	c := controller(sys, zeroJitterScheduler(), 3)
	c.Opt.Shards = 8
	c.Faults = inj
	c.Obs = rec

	const epochs = 8
	if _, err := c.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}

	spans := map[uint64]obs.Event{}
	for _, ev := range evs {
		if ev.Kind != "span" {
			continue
		}
		if ev.Span == 0 {
			t.Fatalf("span with zero ID: %+v", ev)
		}
		if _, dup := spans[ev.Span]; dup {
			t.Fatalf("duplicate span ID %d", ev.Span)
		}
		spans[ev.Span] = ev
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	roots := 0
	for id, ev := range spans {
		if ev.Parent == 0 {
			roots++
			continue
		}
		if ev.Parent >= id {
			t.Fatalf("span %d has parent %d >= its own ID", id, ev.Parent)
		}
		// Walk to the root; the ID ordering bounds the walk.
		seen := 0
		for cur := ev.Parent; cur != 0; seen++ {
			p, ok := spans[cur]
			if !ok {
				t.Fatalf("span %d's ancestor %d was never emitted", id, cur)
			}
			if p.Trace != ev.Trace {
				t.Fatalf("span %d (trace %d) chains into trace %d", id, ev.Trace, p.Trace)
			}
			if seen > len(spans) {
				t.Fatalf("span %d's parent chain does not terminate", id)
			}
			cur = p.Parent
		}
	}
	if roots == 0 {
		t.Fatal("no root spans")
	}

	ledgers := 0
	for _, ev := range evs {
		if ev.Parent != 0 && ev.Kind != "span" {
			if _, ok := spans[ev.Parent]; !ok {
				t.Fatalf("%s %q attributed to unknown span %d", ev.Kind, ev.Name, ev.Parent)
			}
		}
		if ev.Kind != "ledger" {
			continue
		}
		ledgers++
		l := ev.Ledger
		if l == nil {
			t.Fatalf("ledger event without payload: %+v", ev)
		}
		if sum := l.ShedLoss + l.DriftLoss + l.FaultLoss + l.ConflictLoss + l.FallbackLoss; sum != l.Planned-l.Realized {
			t.Fatalf("epoch %d ledger inexact: buckets %v vs gap %v", l.Epoch, sum, l.Planned-l.Realized)
		}
		if l.ConflictLoss != 0 || l.FallbackLoss != 0 {
			t.Fatalf("epoch %d: protocol buckets must be exactly 0: %+v", l.Epoch, l)
		}
	}
	if ledgers != epochs {
		t.Fatalf("ledgers %d, want %d", ledgers, epochs)
	}

	// The sharded decide path must actually have traced: cells and rounds.
	names := map[string]int{}
	for _, ev := range spans {
		names[ev.Name]++
	}
	for _, want := range []string{"epoch", "decide_attempt", "decide_cell", "shard_plan", "shard_round", "shard_cell", "des"} {
		if names[want] == 0 {
			t.Fatalf("no %q spans in a sharded traced run (have %v)", want, names)
		}
	}
}
