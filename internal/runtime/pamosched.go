package runtime

import (
	"context"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
)

// PaMOScheduler adapts the PaMO optimizer to the controller's Scheduler
// interface: every replan runs a fresh Algorithm 2 loop against the
// drifted system. Opt's Seed is advanced per epoch so repeated replans
// explore differently while remaining reproducible. It is mask-aware:
// after a server crash the optimizer plans directly onto the survivors
// via pamo.Options.ServerMask.
type PaMOScheduler struct {
	DM  pref.DecisionMaker
	Opt pamo.Options
}

// Decide implements Scheduler.
func (p *PaMOScheduler) Decide(ctx context.Context, sys *objective.System, epoch int) (eva.Decision, error) {
	return p.DecideMasked(ctx, sys, nil, epoch)
}

// DecideMasked implements MaskAware.
func (p *PaMOScheduler) DecideMasked(ctx context.Context, sys *objective.System, healthy []bool, epoch int) (eva.Decision, error) {
	opt := p.Opt
	opt.Seed += uint64(epoch) * 1009
	opt.UseEUBO = true
	opt.ServerMask = healthy
	res, err := pamo.New(sys, p.DM, opt).RunContext(ctx)
	if err != nil {
		return eva.Decision{}, err
	}
	return res.Best.Decision, nil
}
