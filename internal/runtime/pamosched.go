package runtime

import (
	"context"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/videosim"
)

// PaMOScheduler adapts the PaMO optimizer to the controller's Scheduler
// interface: every replan runs a fresh Algorithm 2 loop against the
// drifted system. Opt's Seed is advanced per epoch so repeated replans
// explore differently while remaining reproducible. It is mask-aware:
// after a server crash the optimizer plans directly onto the survivors
// via pamo.Options.ServerMask.
type PaMOScheduler struct {
	DM  pref.DecisionMaker
	Opt pamo.Options
}

// Decide implements Scheduler.
func (p *PaMOScheduler) Decide(ctx context.Context, sys *objective.System, epoch int) (eva.Decision, error) {
	return p.DecideMasked(ctx, sys, nil, epoch)
}

// DecideMasked implements MaskAware.
func (p *PaMOScheduler) DecideMasked(ctx context.Context, sys *objective.System, healthy []bool, epoch int) (eva.Decision, error) {
	opt := p.Opt
	opt.Seed += uint64(epoch) * 1009
	opt.UseEUBO = true
	opt.ServerMask = healthy
	res, err := pamo.New(sys, p.DM, opt).RunContext(ctx)
	if err != nil {
		return eva.Decision{}, err
	}
	return res.Best.Decision, nil
}

// DecideCell implements CellDecider: one independent Algorithm 2 run over a
// sub-system holding only the cell's clips. Every pamo.New call owns its
// state, so concurrent cells never share mutable optimizer scratch. The
// optimizer's own placement is a feasibility witness for its configuration
// choice; the sharded control plane re-places the combined workload through
// the arbiter. The seed is derived from (base seed, epoch, first video of
// the cell), so results are reproducible and independent of goroutine
// scheduling order.
func (p *PaMOScheduler) DecideCell(ctx context.Context, sys *objective.System, videos []int, epoch int) ([]videosim.Config, error) {
	if len(videos) == 0 {
		return nil, nil
	}
	clips := make([]*videosim.Clip, len(videos))
	for k, v := range videos {
		clips[k] = sys.Clips[v]
	}
	sub := &objective.System{Clips: clips, Servers: sys.Servers}
	opt := p.Opt
	// Cells run concurrently and the bank's models are not goroutine-safe;
	// per-cell optimizers always profile cold.
	opt.Models = nil
	opt.Seed += uint64(epoch)*1009 + uint64(videos[0])*2654435761
	opt.UseEUBO = true
	res, err := pamo.New(sub, p.DM, opt).RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return res.Best.Decision.Configs, nil
}
