package runtime

import (
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
)

// PaMOScheduler adapts the PaMO optimizer to the controller's Scheduler
// interface: every replan runs a fresh Algorithm 2 loop against the
// drifted system. Opt's Seed is advanced per epoch so repeated replans
// explore differently while remaining reproducible.
type PaMOScheduler struct {
	DM  pref.DecisionMaker
	Opt pamo.Options
}

// Decide implements Scheduler.
func (p *PaMOScheduler) Decide(sys *objective.System, epoch int) (eva.Decision, error) {
	opt := p.Opt
	opt.Seed += uint64(epoch) * 1009
	opt.UseEUBO = true
	res, err := pamo.New(sys, p.DM, opt).Run()
	if err != nil {
		return eva.Decision{}, err
	}
	return res.Best.Decision, nil
}
