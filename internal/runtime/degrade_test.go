package runtime

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/videosim"
)

// gradedSys builds m uniform clips whose AccFactor rises with the index, so
// the drop order (lowest truth-benefit first) is exactly the index order.
func gradedSys(m, n int) *objective.System {
	clips := make([]*videosim.Clip, m)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: fmt.Sprintf("cam%d", i), AccBase: 0.9,
			AccFactor: 0.5 + 0.02*float64(i), ComputeFac: 1, BitFac: 1, EnergyFac: 1,
		}
	}
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: 20e6}
	}
	return &objective.System{Clips: clips, Servers: servers}
}

func minConfigs(m int) []videosim.Config {
	cfgs := make([]videosim.Config, m)
	for i := range cfgs {
		cfgs[i] = videosim.Config{Resolution: videosim.Resolutions[0], FPS: videosim.FrameRates[0]}
	}
	return cfgs
}

// TestDegradeDropsLowestBenefitFirst: 20 videos at the minimum
// configuration need 20·13.75ms = 275ms on one server, but the 5 fps
// period allows only 200ms, so exactly six videos (14·13.75 = 192.5ms
// fits, 15 does not) must be shed — and they must be the six with the
// lowest accuracy contribution, i.e. the lowest indices here.
func TestDegradeDropsLowestBenefitFirst(t *testing.T) {
	sys := gradedSys(20, 1)
	c := controller(sys, nil, 1)
	d := c.degrade(sys, []bool{true}, minConfigs(20), nil, nil)
	if len(d.Shed) != 6 {
		t.Fatalf("shed %v, want exactly 6 videos", d.Shed)
	}
	for i, v := range d.Shed {
		if v != i {
			t.Fatalf("shed %v, want the lowest-benefit videos [0..5]", d.Shed)
		}
	}
	if len(d.Downgraded) != 0 {
		t.Fatalf("nothing was downgradable, yet downgraded = %v", d.Downgraded)
	}
	if len(d.Streams) != 14 {
		t.Fatalf("planned %d streams, want 14 survivors", len(d.Streams))
	}
	if err := decisionValid(d, []bool{true}, 1); err != nil {
		t.Fatal(err)
	}
	if !d.IsDegraded() {
		t.Fatal("decision does not report degradation")
	}
}

// TestDegradeLowersBeforeDropping: a workload that fits after frame-rate
// reductions must not lose any video.
func TestDegradeLowersBeforeDropping(t *testing.T) {
	sys := uniformSys(6, 3)
	c := controller(sys, nil, 1)
	base := make([]videosim.Config, 6)
	for i := range base {
		base[i] = videosim.Config{Resolution: 1500, FPS: 10}
	}
	d := c.degrade(sys, []bool{true, true, false}, base, nil, nil)
	if len(d.Shed) != 0 {
		t.Fatalf("shed %v: downgrading suffices", d.Shed)
	}
	if len(d.Downgraded) != 6 {
		t.Fatalf("downgraded %v, want all 6", d.Downgraded)
	}
	for i := range d.Configs {
		// Frame rate drops before resolution.
		if d.Configs[i].Resolution != 1500 || d.Configs[i].FPS != 6 {
			t.Fatalf("video %d config %+v, want {1500 6}", i, d.Configs[i])
		}
	}
	if err := decisionValid(d, []bool{true, true, false}, 3); err != nil {
		t.Fatal(err)
	}
}

// TestDegradeZeroHealthyShedsAll: with no capacity at all, every video is
// shed and the empty decision is still well-formed.
func TestDegradeZeroHealthyShedsAll(t *testing.T) {
	sys := uniformSys(4, 2)
	c := controller(sys, nil, 1)
	d := c.degrade(sys, []bool{false, false}, defaultConfigs(4), nil, nil)
	if len(d.Shed) != 4 || len(d.Streams) != 0 || len(d.Assign) != 0 {
		t.Fatalf("blackout decision: %+v", d)
	}
}

// TestDegradeCarriesPriorVictimsForward: re-degrading an already-degraded
// decision keeps the earlier victims in the record even when this call
// needs no new ones.
func TestDegradeCarriesPriorVictimsForward(t *testing.T) {
	sys := uniformSys(4, 2)
	c := controller(sys, nil, 1)
	base := defaultConfigs(4)
	base[2] = videosim.Config{Resolution: 1000, FPS: 6} // previously lowered
	d := c.degrade(sys, []bool{true, true}, base, []int{1}, []int{2})
	if len(d.Shed) != 1 || d.Shed[0] != 1 {
		t.Fatalf("prior shed lost: %v", d.Shed)
	}
	if len(d.Downgraded) != 1 || d.Downgraded[0] != 2 {
		t.Fatalf("prior downgrade lost: %v", d.Downgraded)
	}
	// Video 1 stays shed: three streams, not four.
	if len(d.Streams) != 3 {
		t.Fatalf("streams = %d, want 3 (video 1 stays shed)", len(d.Streams))
	}
}

func TestLowerOneOrder(t *testing.T) {
	c := videosim.Config{Resolution: 1000, FPS: 10}
	if got := lowerOne(c); got.FPS != 6 || got.Resolution != 1000 {
		t.Fatalf("lowerOne fps step: %+v", got)
	}
	c = videosim.Config{Resolution: 1000, FPS: videosim.FrameRates[0]}
	if got := lowerOne(c); got.Resolution != 750 || got.FPS != videosim.FrameRates[0] {
		t.Fatalf("lowerOne resolution step: %+v", got)
	}
	bottom := videosim.Config{Resolution: videosim.Resolutions[0], FPS: videosim.FrameRates[0]}
	if lowerable(bottom) {
		t.Fatal("grid minimum reported lowerable")
	}
	if got := lowerOne(bottom); got != bottom {
		t.Fatalf("lowerOne changed the minimum: %+v", got)
	}
	// Off-grid values snap to the next grid point below.
	if got := stepDown(videosim.FrameRates, 7); got != 6 {
		t.Fatalf("stepDown(7) = %v", got)
	}
}
