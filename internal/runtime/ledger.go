package runtime

import (
	"context"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Benefit attribution
//
// Each epoch with telemetry enabled, the controller decomposes the gap
// between the benefit the planner thought it bought and the benefit the
// epoch delivered by scoring the installed decision under a chain of
// counterfactual worlds, peeling one misfortune off at a time:
//
//	B0  baseline content, healthy cluster, shed videos restored  = Planned
//	B1  baseline content, healthy cluster, shed applied          → ShedLoss  = B0−B1
//	B2  drifted content, healthy cluster, shed applied           → DriftLoss ≈ B1−B2
//	B3  drifted content, faults applied (the epoch's real eval)  = Realized  → FaultLoss = B2−B3
//
// ConflictLoss and FallbackLoss are identically zero — the sharded
// protocol's bounces and serial fallbacks cost decide latency, never
// benefit (the committed plan is exact either way) — but their counts ride
// along so a retry storm is visible next to the losses that matter.
// DriftLoss is the residual bucket obs.EpochLedger.Close nudges so the
// bucket sum telescopes to Planned−Realized with exact float equality.
//
// The counterfactual evaluations run through the same evaluate engine as
// the real epoch scoring with telemetry and audits suppressed: they are
// deterministic, RNG-free, and reuse the per-server arenas, so a recorded
// run's installed decisions and reports stay bit-identical to an
// unrecorded run — the goldens pin this.

// ledgerInput gathers what buildLedger needs from one epoch of Run.
type ledgerInput struct {
	epoch        int
	drifted      *objective.System // drifted clips; servers possibly link-scaled
	d            eva.Decision
	healthy      []bool
	stalledCams  []int
	realized     float64
	stats        shard.Stats
	replanFailed bool
	degraded     bool
	workers      int
}

// buildLedger runs the counterfactual chain and returns the closed ledger.
func (c *Controller) buildLedger(ctx context.Context, in ledgerInput) obs.EpochLedger {
	bene := func(sys *objective.System, d eva.Decision) float64 {
		out, _ := c.evaluate(ctx, sys, d, in.workers, nil, nil, nil, false, in.epoch, nil)
		return c.Truth.Benefit(c.Norm.Normalize(out))
	}
	baseSys := &objective.System{Clips: c.Sys.Clips, Servers: c.Sys.Servers}
	driftedClean := &objective.System{Clips: in.drifted.Clips, Servers: c.Sys.Servers}

	// B1: what the installed decision was worth in the world it was planned
	// for. B0 additionally restores the shed videos' analytic outcomes (their
	// streams are gone from the decision, so only the per-clip terms return).
	b1 := bene(baseSys, in.d)
	b0 := b1
	if len(in.d.Shed) > 0 {
		full := in.d
		full.Shed = nil
		b0 = bene(baseSys, full)
	}
	b2 := bene(driftedClean, in.d)

	led := obs.EpochLedger{
		Epoch:            in.epoch,
		Planned:          b0,
		Realized:         in.realized,
		ShedLoss:         b0 - b1,
		DriftLoss:        b1 - b2,
		FaultLoss:        b2 - in.realized,
		ConflictRetries:  in.stats.Retries,
		FellBack:         in.stats.FellBack,
		ReplanFailed:     in.replanFailed,
		Degraded:         in.degraded,
		ShedVideos:       append([]int(nil), in.d.Shed...),
		DowngradedVideos: append([]int(nil), in.d.Downgraded...),
		ServersDown:      downServers(in.healthy),
		StalledCameras:   append([]int(nil), in.stalledCams...),
		CellRetries:      append([]int(nil), in.stats.CellRetries...),
	}
	led.Close()
	return led
}

// recordLedgerMetrics mirrors the ledger's buckets onto the registry so
// Prometheus scrapes see the attribution without parsing JSONL.
func recordLedgerMetrics(reg *obs.Registry, l *obs.EpochLedger) {
	reg.Gauge("ledger_planned_benefit").Set(l.Planned)
	reg.Gauge("ledger_realized_benefit").Set(l.Realized)
	reg.Gauge("ledger_shed_loss").Set(l.ShedLoss)
	reg.Gauge("ledger_drift_loss").Set(l.DriftLoss)
	reg.Gauge("ledger_fault_loss").Set(l.FaultLoss)
	if l.ConflictRetries > 0 {
		reg.Counter("ledger_conflict_retries_total").Add(uint64(l.ConflictRetries))
	}
	if l.FellBack {
		reg.Counter("ledger_fallbacks_total").Inc()
	}
}

// downServers lists the indices the liveness mask marks down (nil mask =
// none).
func downServers(healthy []bool) []int {
	var out []int
	for j, ok := range healthy {
		if !ok {
			out = append(out, j)
		}
	}
	return out
}
