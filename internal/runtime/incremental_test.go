package runtime

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/obs"
)

// incController builds a controller with the incremental fast path on, a
// strict checker (any infeasible installed decision aborts the run), and a
// recorder so the test can read the replan counters.
func incController(m, n, replanEvery int) (*Controller, *obs.Recorder) {
	sys := testSys(m, n)
	rec := obs.NewRecorder(nil)
	c := controller(sys, zeroJitterScheduler(), replanEvery)
	c.Obs = rec
	c.Opt.Incremental = true
	c.Opt.Check = check.New(true, rec)
	return c, rec
}

// TestIncrementalReplanFastPath runs a drifting system with frequent replans
// and expects the amortized path to carry most of them: epoch 0 is a full
// solve (nothing to extend), later clock replans keep the grouping and only
// re-solve the Hungarian mapping. The strict checker verifies every
// installed decision against the exact constraints, so a fast-path plan that
// was less feasible than a full solve would abort the run.
func TestIncrementalReplanFastPath(t *testing.T) {
	c, rec := incController(6, 3, 2)
	trace, err := c.Run(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 12 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	reg := rec.Registry()
	total := reg.Counter("runtime_replans_total").Value()
	inc := reg.Counter("runtime_replans_incremental_total").Value()
	if total != 6 { // epochs 0, 2, 4, 6, 8, 10
		t.Fatalf("replans = %d, want 6", total)
	}
	if inc == 0 {
		t.Fatal("incremental fast path never taken")
	}
	if inc >= total {
		t.Fatalf("incremental replans %d not below total %d (epoch 0 must be a full solve)", inc, total)
	}
	for _, r := range trace.Reports {
		if r.Epoch%2 == 0 && !r.Replanned {
			t.Fatalf("epoch %d: expected a replan", r.Epoch)
		}
		if r.Replanned && r.Epoch > 0 && r.DecideAttempts > 0 && r.Epoch%2 == 0 {
			// Fast-path epochs never invoke the scheduler; fallback epochs do.
			// Either is legal — this just documents that both paths report.
			continue
		}
	}
}

// TestIncrementalOffMatchesDefault pins that the flag defaults off and that
// enabling it changes only which solver produced the plan, not the loop's
// shape: same epochs, same replan cadence, benefits finite.
func TestIncrementalOffMatchesDefault(t *testing.T) {
	c1, rec1 := incController(5, 3, 3)
	c1.Opt.Incremental = false
	t1, err := c1.Run(context.Background(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if v := rec1.Registry().Counter("runtime_replans_incremental_total").Value(); v != 0 {
		t.Fatalf("incremental counter %d with the flag off", v)
	}
	c2, _ := incController(5, 3, 3)
	t2, err := c2.Run(context.Background(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Reports) != len(t2.Reports) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(t1.Reports), len(t2.Reports))
	}
	for i := range t1.Reports {
		if t1.Reports[i].Replanned != t2.Reports[i].Replanned {
			t.Fatalf("epoch %d: replan cadence diverged", i)
		}
	}
}

// TestIncrementalDeterministic pins that the fast path is reproducible:
// two identical incremental runs produce identical traces.
func TestIncrementalDeterministic(t *testing.T) {
	run := func() *Trace {
		c, _ := incController(6, 3, 2)
		c.Opt.Workers = 1
		tr, err := c.Run(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("incremental runs diverged")
	}
}

// TestIncrementalUnderFaults crashes a server mid-run with the fast path
// enabled. The forced replan must land every stream on a survivor — either
// the incremental Hungarian re-map onto the healthy columns or the full
// fallback — and the strict checker keeps both honest. After recovery the
// loop keeps running to the full horizon.
func TestIncrementalUnderFaults(t *testing.T) {
	sys := testSys(6, 3)
	rec := obs.NewRecorder(nil)
	sc := &fault.Scenario{Events: []fault.Event{
		{Epoch: 3, Action: fault.ServerDown, Target: 2},
		{Epoch: 7, Action: fault.ServerUp, Target: 2},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	c := controller(sys, zeroJitterScheduler(), 2)
	c.Faults = inj
	c.Obs = rec
	c.Opt.Incremental = true
	c.Opt.Check = check.New(true, rec)
	trace, err := c.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 10 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	for _, r := range trace.Reports {
		if r.Epoch >= 3 && r.Epoch < 7 {
			if r.HealthyServers != 2 {
				t.Fatalf("epoch %d: healthy = %d, want 2", r.Epoch, r.HealthyServers)
			}
			if len(r.ServerStreams) == 3 && r.ServerStreams[2] != 0 {
				t.Fatalf("epoch %d: dead server still running %d streams", r.Epoch, r.ServerStreams[2])
			}
		}
	}
	if v := rec.Registry().Counter("check_violations_total"); v != nil && v.Value() != 0 {
		t.Fatalf("strict checker recorded %d violations", v.Value())
	}
}
