package runtime

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
)

func TestRunEmitsEpochEventsAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	sys := testSys(4, 2)
	c := controller(sys, zeroJitterScheduler(), 3)
	c.Obs = rec

	const epochs = 7
	tr, err := c.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var epochEvents, epochSpans, replanSpans, serverEvents, ledgers int
	for _, ev := range evs {
		switch {
		case ev.Name == "epoch" && ev.Kind == "event":
			epochEvents++
			if ev.Fields["epoch"] != float64(epochEvents-1) {
				t.Fatalf("epoch event %d has epoch field %v", epochEvents-1, ev.Fields["epoch"])
			}
			if _, ok := ev.Fields["drift"]; !ok {
				t.Fatalf("epoch event missing drift field: %v", ev.Fields)
			}
		case ev.Name == "epoch" && ev.Kind == "span":
			epochSpans++
			if ev.Span == 0 || ev.Trace == 0 {
				t.Fatalf("epoch span missing ids: %+v", ev)
			}
		case ev.Name == "replan" && ev.Kind == "span":
			replanSpans++
			if ev.Parent == 0 {
				t.Fatalf("replan span has no parent: %+v", ev)
			}
		case ev.Name == "cluster.server":
			serverEvents++
		case ev.Kind == "ledger":
			ledgers++
			if ev.Ledger == nil {
				t.Fatalf("ledger event missing payload: %+v", ev)
			}
			if !ev.Ledger.CheckExact() {
				t.Fatalf("epoch %d ledger inexact: gap %v buckets %v",
					ev.Ledger.Epoch, ev.Ledger.Gap(), ev.Ledger.SumBuckets())
			}
		}
	}
	if epochEvents != epochs {
		t.Fatalf("epoch events %d, want %d", epochEvents, epochs)
	}
	if epochSpans != epochs {
		t.Fatalf("epoch spans %d, want %d", epochSpans, epochs)
	}
	if ledgers != epochs {
		t.Fatalf("ledger events %d, want %d", ledgers, epochs)
	}
	// Replans at epochs 0, 3, 6 with ReplanEvery=3.
	if replanSpans != 3 {
		t.Fatalf("replan spans %d, want 3", replanSpans)
	}
	// One DES simulation per server per epoch.
	if serverEvents != epochs*sys.N() {
		t.Fatalf("cluster.server events %d, want %d", serverEvents, epochs*sys.N())
	}

	snap := rec.Registry().Snapshot()
	if got := snap.Counters["runtime_epochs_total"]; got != epochs {
		t.Fatalf("runtime_epochs_total %d, want %d", got, epochs)
	}
	if got := snap.Counters["runtime_replans_total"]; got != 3 {
		t.Fatalf("runtime_replans_total %d, want 3", got)
	}
	if got := snap.Gauges["runtime_benefit"]; got != tr.Reports[epochs-1].Benefit {
		t.Fatalf("runtime_benefit gauge %v vs last report %v", got, tr.Reports[epochs-1].Benefit)
	}
	h, ok := snap.Histograms["cluster_server_utilization"]
	if !ok || h.Count != uint64(epochs*sys.N()) {
		t.Fatalf("cluster_server_utilization count %v (ok=%v), want %d", h.Count, ok, epochs*sys.N())
	}
}

func TestRunNilRecorderUnchanged(t *testing.T) {
	// The telemetry hooks must not perturb the control loop: a run with a
	// nil recorder and a run with an aggregate-only recorder agree epoch by
	// epoch.
	runOnce := func(rec *obs.Recorder) *Trace {
		sys := testSys(4, 2)
		c := controller(sys, zeroJitterScheduler(), 3)
		c.Obs = rec
		tr, err := c.Run(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain := runOnce(nil)
	recorded := runOnce(obs.NewRecorder(nil))
	for i := range plain.Reports {
		if plain.Reports[i].Benefit != recorded.Reports[i].Benefit ||
			plain.Reports[i].Replanned != recorded.Reports[i].Replanned {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, plain.Reports[i], recorded.Reports[i])
		}
	}
}
