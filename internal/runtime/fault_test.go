package runtime

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/videosim"
)

// uniformSys builds a system of m identical drift-free-factor clips (all
// factors 1, content phase 0) so feasibility arithmetic in the fault tests
// is exact: ProcTime(r) = 0.010 + 1.5e-8·r², scaled only by the ±5%
// content-difficulty wave shared by every clip.
func uniformSys(m, n int) *objective.System {
	clips := make([]*videosim.Clip, m)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: fmt.Sprintf("cam%d", i), AccBase: 0.9,
			AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1,
		}
	}
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	return &objective.System{Clips: clips, Servers: servers}
}

func faultController(sys *objective.System, s Scheduler, replanEvery int, sc *fault.Scenario, t *testing.T) *Controller {
	t.Helper()
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	c := controller(sys, s, replanEvery)
	c.Faults = inj
	return c
}

func streamSum(r EpochReport) int {
	s := 0
	for _, v := range r.ServerStreams {
		s += v
	}
	return s
}

// TestFaultKillOneOfFour is the acceptance scenario: killing one of four
// servers mid-run forces an immediate replan onto the three survivors with
// no shedding (capacity suffices), and recovery restores the full cluster —
// all within the epoch the event fires.
func TestFaultKillOneOfFour(t *testing.T) {
	sys := uniformSys(6, 4)
	sc := &fault.Scenario{Name: "kill-1-of-4", Events: []fault.Event{
		{Epoch: 3, Action: fault.ServerDown, Target: 1},
		{Epoch: 7, Action: fault.ServerUp, Target: 1},
	}}
	// ReplanEvery 100: every replan after epoch 0 is fault-forced.
	c := faultController(sys, &FixedScheduler{Cfg: videosim.Config{Resolution: 1500, FPS: 10}}, 100, sc, t)
	trace, err := c.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 10 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	for _, r := range trace.Reports {
		if r.Degraded || len(r.Shed) != 0 || len(r.Downgraded) != 0 {
			t.Fatalf("epoch %d degraded (%v/%v): 3 servers fit this workload", r.Epoch, r.Shed, r.Downgraded)
		}
		if r.ReplanFailed {
			t.Fatalf("epoch %d replan failed", r.Epoch)
		}
		if streamSum(r) != 6 {
			t.Fatalf("epoch %d placed %d of 6 streams (%v)", r.Epoch, streamSum(r), r.ServerStreams)
		}
		wantReplan := r.Epoch == 0 || r.Epoch == 3 || r.Epoch == 7
		if r.Replanned != wantReplan {
			t.Fatalf("epoch %d replanned = %v", r.Epoch, r.Replanned)
		}
		wantHealthy := 4
		if r.Epoch >= 3 && r.Epoch < 7 {
			wantHealthy = 3
		}
		if r.HealthyServers != wantHealthy {
			t.Fatalf("epoch %d healthy = %d, want %d", r.Epoch, r.HealthyServers, wantHealthy)
		}
		if r.Epoch >= 3 && r.Epoch < 7 && r.ServerStreams[1] != 0 {
			t.Fatalf("epoch %d: dead server 1 still has %d streams", r.Epoch, r.ServerStreams[1])
		}
	}
	if trace.Reports[3].FaultEvents != 1 || trace.Reports[7].FaultEvents != 1 {
		t.Fatalf("fault events: epoch3=%d epoch7=%d", trace.Reports[3].FaultEvents, trace.Reports[7].FaultEvents)
	}
}

// TestFaultDegradationDowngrades loses one of three servers under a
// workload that only fits three at full rate: the degradation policy must
// lower every video's frame rate (10 → 6 fps), shed nothing, keep
// reporting the downgrades across the outage (including a mid-outage
// replan epoch), and restore the full-rate plan the epoch the server
// returns.
func TestFaultDegradationDowngrades(t *testing.T) {
	sys := uniformSys(6, 3)
	sc := &fault.Scenario{Name: "degrade", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 2},
		{Epoch: 6, Action: fault.ServerUp, Target: 2},
	}}
	// At (1500, 10) each stream needs 43.75ms per 100ms period: three
	// pair-groups fill three servers exactly, and no mix of 10/6 fps fits
	// two servers (1/6 is not a multiple of 1/10), so the policy must walk
	// all six videos down to 6 fps — and no further.
	c := faultController(sys, &FixedScheduler{Cfg: videosim.Config{Resolution: 1500, FPS: 10}}, 4, sc, t)
	trace, err := c.Run(context.Background(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 9 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	for _, r := range trace.Reports {
		inOutage := r.Epoch >= 2 && r.Epoch < 6
		if r.Degraded != inOutage {
			t.Fatalf("epoch %d degraded = %v", r.Epoch, r.Degraded)
		}
		if len(r.Shed) != 0 {
			t.Fatalf("epoch %d shed %v: downgrading suffices here", r.Epoch, r.Shed)
		}
		if inOutage {
			if len(r.Downgraded) != 6 {
				t.Fatalf("epoch %d downgraded %v, want all 6", r.Epoch, r.Downgraded)
			}
			for i, v := range r.Downgraded {
				if v != i {
					t.Fatalf("epoch %d downgraded %v, want [0 1 2 3 4 5]", r.Epoch, r.Downgraded)
				}
			}
			if r.ServerStreams[2] != 0 {
				t.Fatalf("epoch %d: dead server 2 has %d streams", r.Epoch, r.ServerStreams[2])
			}
		} else if len(r.Downgraded) != 0 {
			t.Fatalf("epoch %d downgraded %v outside the outage", r.Epoch, r.Downgraded)
		}
		if streamSum(r) != 6 {
			t.Fatalf("epoch %d placed %d of 6 streams", r.Epoch, streamSum(r))
		}
	}
	// Recovery epoch replans the full-rate decision immediately.
	if r := trace.Reports[6]; !r.Replanned || r.Degraded || r.HealthyServers != 3 {
		t.Fatalf("recovery epoch: %+v", r)
	}
	// The degradation epoch itself replanned (onto the survivors).
	if r := trace.Reports[2]; !r.Replanned || r.HealthyServers != 2 || r.DecideAttempts != 1 {
		t.Fatalf("degradation epoch: %+v", r)
	}
}

// TestFaultAllServersDownShedsEverything drives the cluster to zero
// capacity: every video is shed, the epoch still completes, and recovery
// brings the full workload back.
func TestFaultAllServersDownShedsEverything(t *testing.T) {
	sys := uniformSys(3, 2)
	sc := &fault.Scenario{Name: "blackout", Events: []fault.Event{
		{Epoch: 1, Action: fault.ServerDown, Target: 0},
		{Epoch: 1, Action: fault.ServerDown, Target: 1},
		{Epoch: 3, Action: fault.ServerUp, Target: 0},
		{Epoch: 3, Action: fault.ServerUp, Target: 1},
	}}
	c := faultController(sys, &FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}}, 100, sc, t)
	trace, err := c.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Reports {
		blackout := r.Epoch == 1 || r.Epoch == 2
		if blackout {
			if !r.Degraded || len(r.Shed) != 3 || streamSum(r) != 0 {
				t.Fatalf("blackout epoch %d: %+v", r.Epoch, r)
			}
		} else if r.Degraded || len(r.Shed) != 0 || streamSum(r) != 6 {
			// 3 videos at 10 fps with ~25ms processing split into 3 groups of
			// paired... (streams = videos here: one stream each, 3 total)
			if streamSum(r) != 3 {
				t.Fatalf("healthy epoch %d: %+v", r.Epoch, r)
			}
		}
	}
}

// TestBlockingSchedulerCannotStall proves the acceptance property that a
// scheduler stub which blocks forever cannot stall the controller: the
// per-attempt deadline fires, the bounded retry path runs, and the
// previous decision keeps the epochs flowing.
func TestBlockingSchedulerCannotStall(t *testing.T) {
	sys := testSys(4, 3)
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release) // unblock the abandoned goroutines at test end
	s := SchedulerFunc(func(ctx context.Context, sy *objective.System, epoch int) (eva.Decision, error) {
		if calls.Add(1) == 1 {
			return zeroJitterScheduler().Decide(ctx, sy, epoch)
		}
		<-release // ignores ctx entirely: the worst-behaved scheduler
		return eva.Decision{}, errors.New("released")
	})
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	c := controller(sys, s, 2)
	c.Obs = rec
	c.Opt.DecideTimeout = 20 * time.Millisecond
	c.Opt.DecideRetries = 1
	c.Opt.RetryBackoff = time.Millisecond

	var trace *Trace
	var err error
	done := make(chan struct{})
	go func() {
		trace, err = c.Run(context.Background(), 4)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("controller stalled behind a hung scheduler")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != 4 {
		t.Fatalf("reports = %d", len(trace.Reports))
	}
	if r := trace.Reports[0]; !r.Replanned || r.ReplanFailed || r.DecideAttempts != 1 {
		t.Fatalf("epoch 0: %+v", r)
	}
	// Epoch 2's replan hangs: both attempts time out, the old decision runs.
	if r := trace.Reports[2]; !r.ReplanFailed || r.Replanned || r.DecideAttempts != 2 {
		t.Fatalf("epoch 2: replan_failed=%v replanned=%v attempts=%d", r.ReplanFailed, r.Replanned, r.DecideAttempts)
	}
	for _, r := range trace.Reports {
		if r.Outcome[objective.Accuracy] <= 0 {
			t.Fatalf("epoch %d not evaluated: %+v", r.Epoch, r.Outcome)
		}
	}
	reg := rec.Registry()
	if v := reg.Counter("runtime_decide_timeouts_total").Value(); v != 2 {
		t.Fatalf("decide timeouts = %d, want 2", v)
	}
	if v := reg.Counter("runtime_decide_retries_total").Value(); v != 1 {
		t.Fatalf("decide retries = %d, want 1", v)
	}
	if v := reg.Counter("runtime_replans_failed_total").Value(); v != 1 {
		t.Fatalf("failed replans = %d, want 1", v)
	}
}

// TestFaultTraceDeterministic is the failover-determinism guarantee: the
// same generated scenario and seed produce a byte-identical trace, with
// telemetry enabled and disabled (under -race this also proves the
// parallel evaluators and recorder do not perturb results).
func TestFaultTraceDeterministic(t *testing.T) {
	sc := fault.Generate(fault.GenOptions{
		Epochs: 10, Servers: 4, Cameras: 6, Seed: 11,
		CrashProb: 0.2, StallProb: 0.1, DegradeProb: 0.2,
	})
	hasServerFault := false
	for _, e := range sc.Events {
		if e.Action == fault.ServerDown {
			hasServerFault = true
		}
	}
	if !hasServerFault {
		t.Fatal("generated scenario has no server crash; pick a different seed")
	}
	run := func(rec *obs.Recorder) []byte {
		sys := testSys(6, 4)
		c := faultController(sys, zeroJitterScheduler(), 3, sc, t)
		c.Obs = rec
		tr, err := c.Run(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := run(nil)
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	if withTelemetry := run(rec); !bytes.Equal(plain, withTelemetry) {
		t.Fatal("telemetry changed the trace bytes")
	}
	if again := run(nil); !bytes.Equal(plain, again) {
		t.Fatal("same scenario and seed produced different traces")
	}
}

// TestFaultLinkDegradeMovesLatency checks the bandwidth fault path: scaling
// a server's uplink down must raise measured latency while leaving the
// topology (and hence the plan) alone.
func TestFaultLinkDegradeMovesLatency(t *testing.T) {
	sys := uniformSys(4, 2)
	sc := &fault.Scenario{Name: "slow-link", Events: []fault.Event{
		{Epoch: 2, Action: fault.LinkDegrade, Target: 0, Factor: 0.05},
		{Epoch: 2, Action: fault.LinkDegrade, Target: 1, Factor: 0.05},
		{Epoch: 4, Action: fault.LinkRestore, Target: 0},
		{Epoch: 4, Action: fault.LinkRestore, Target: 1},
	}}
	c := faultController(sys, &FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}}, 100, sc, t)
	trace, err := c.Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	healthyLat := trace.Reports[0].Outcome[objective.Latency]
	slowLat := trace.Reports[2].Outcome[objective.Latency]
	if slowLat <= healthyLat {
		t.Fatalf("degraded links did not raise latency: %v -> %v", healthyLat, slowLat)
	}
	if r := trace.Reports[2]; r.Degraded || streamSum(r) != 4 {
		t.Fatalf("link degradation should not shed streams: %+v", r)
	}
}

// TestFaultCameraStall checks stalled cameras: their streams stop counting
// toward outcomes and server load, and resume afterwards.
func TestFaultCameraStall(t *testing.T) {
	sys := uniformSys(4, 2)
	sc := &fault.Scenario{Name: "stall", Events: []fault.Event{
		{Epoch: 1, Action: fault.CameraStall, Target: 0},
		{Epoch: 3, Action: fault.CameraResume, Target: 0},
	}}
	c := faultController(sys, &FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}}, 100, sc, t)
	trace, err := c.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Reports {
		stalled := r.Epoch == 1 || r.Epoch == 2
		want := 4
		if stalled {
			want = 3
			if len(r.Stalled) != 1 || r.Stalled[0] != 0 {
				t.Fatalf("epoch %d stalled = %v", r.Epoch, r.Stalled)
			}
		} else if len(r.Stalled) != 0 {
			t.Fatalf("epoch %d stalled = %v", r.Epoch, r.Stalled)
		}
		if streamSum(r) != want {
			t.Fatalf("epoch %d live streams = %d, want %d", r.Epoch, streamSum(r), want)
		}
	}
	// A stalled camera ships no bandwidth: epoch 1 must use less than epoch 0.
	if trace.Reports[1].Outcome[objective.Network] >= trace.Reports[0].Outcome[objective.Network] {
		t.Fatal("stalled camera still consumed bandwidth")
	}
}
