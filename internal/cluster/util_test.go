package cluster

import "math/rand/v2"

func newRng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xABCDEF))
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcmInt(a, b int) int { return a / gcdInt(a, b) * b }
