// Package cluster is a discrete-event simulator of an edge video analytics
// cluster: periodic frame capture at the cameras, uplink transmission, and
// non-preemptive FIFO inference on each server. It reproduces the queueing
// phenomena the paper's scheduler is designed around — latency accumulation
// under computational overload (Figure 3a) and delay jitter under poor
// period grouping (Figure 4) — and is used to verify Theorems 1–3
// empirically.
package cluster

import (
	"fmt"
	"math"
)

// StreamSpec describes one periodic stream as the simulator sees it.
type StreamSpec struct {
	Name   string
	Period float64 // inter-frame period T = 1/fps, seconds
	Offset float64 // capture offset of the first frame, seconds
	Proc   float64 // per-frame inference time on a server, seconds
	Bits   float64 // encoded size of one frame, bits
}

// Server describes one edge server.
type Server struct {
	Name   string
	Uplink float64 // uplink bandwidth B, bits/s
	// SpeedFactor scales the server's processing rate: a frame whose
	// nominal cost is Proc seconds occupies this server for
	// Proc/SpeedFactor seconds. Zero (the homogeneous default) means 1,
	// so existing configurations and golden traces are unchanged.
	SpeedFactor float64
}

// Speed returns the effective processing-rate factor: SpeedFactor when
// positive, else 1. Non-finite or non-positive values fall back to the
// homogeneous default rather than poisoning the simulation.
func (s Server) Speed() float64 {
	if !(s.SpeedFactor > 0) || math.IsInf(s.SpeedFactor, 1) {
		return 1
	}
	return s.SpeedFactor
}

// FrameRecord is the simulated life of one frame.
type FrameRecord struct {
	Stream   int
	Seq      int
	Capture  float64 // capture instant at the camera
	Arrive   float64 // arrival at the server (capture + transmission)
	Start    float64 // inference start
	Finish   float64 // inference completion
}

// Latency returns the frame's end-to-end latency (capture to completion).
func (f FrameRecord) Latency() float64 { return f.Finish - f.Capture }

// Wait returns the queueing delay the frame suffered at the server.
func (f FrameRecord) Wait() float64 { return f.Start - f.Arrive }

// StreamStats summarizes one stream's simulated frames.
type StreamStats struct {
	Frames     int
	MeanLat    float64
	MinLat     float64
	MaxLat     float64
	Jitter     float64 // MaxLat - MinLat
	MaxWait    float64 // worst queueing delay
	Throughput float64 // frames *completed within the horizon* per second
}

// Result is the outcome of simulating one server.
type Result struct {
	Frames      []FrameRecord
	PerStream   []StreamStats
	MaxJitter   float64 // max over streams
	MaxWait     float64
	Utilization float64 // busy time / horizon
}

// JitterEps is the tolerance under which a simulated jitter counts as zero;
// it absorbs float accumulation over the horizon.
const JitterEps = 1e-6

// SimulateServer runs all streams on a single server for the given horizon
// (seconds). Frames are served in arrival order (FIFO, non-preemptive);
// ties in arrival time are broken by stream index, which matches a
// deterministic NIC delivering interleaved packets.
func SimulateServer(streams []StreamSpec, srv Server, horizon float64) Result {
	if horizon <= 0 {
		panic(fmt.Sprintf("cluster: non-positive horizon %v", horizon))
	}
	tx := make([]float64, len(streams))
	total := 0
	for si, s := range streams {
		if s.Period <= 0 {
			panic(fmt.Sprintf("cluster: stream %d has period %v", si, s.Period))
		}
		if srv.Uplink > 0 {
			tx[si] = s.Bits / srv.Uplink
		}
		if n := math.Ceil((horizon - s.Offset) / s.Period); n > 0 {
			total += int(n)
		}
	}
	// Each stream emits frames in increasing arrival order (its uplink delay
	// is constant), so a k-way merge produces the global FIFO arrival order
	// directly — no sort. Arrival ties break toward the lower stream index,
	// matching a deterministic NIC delivering interleaved packets.
	frames := make([]FrameRecord, 0, total)
	next := make([]int, len(streams))
	for {
		best, bestArr := -1, math.Inf(1)
		for si := range streams {
			cap := streams[si].Offset + float64(next[si])*streams[si].Period
			if cap >= horizon {
				continue
			}
			if arr := cap + tx[si]; arr < bestArr {
				best, bestArr = si, arr
			}
		}
		if best < 0 {
			break
		}
		frames = append(frames, FrameRecord{
			Stream:  best,
			Seq:     next[best],
			Capture: streams[best].Offset + float64(next[best])*streams[best].Period,
			Arrive:  bestArr,
		})
		next[best]++
	}

	// Service time scales with the server's speed class. At the
	// homogeneous default (speed 1) the division is an exact identity, so
	// golden traces are bit-identical.
	spd := srv.Speed()
	free := 0.0
	busy := 0.0
	for i := range frames {
		f := &frames[i]
		f.Start = math.Max(f.Arrive, free)
		proc := streams[f.Stream].Proc / spd
		f.Finish = f.Start + proc
		free = f.Finish
		busy += proc
	}

	return summarize(frames, streams, horizon, busy)
}

// summarize aggregates simulated frames into per-stream statistics.
func summarize(frames []FrameRecord, streams []StreamSpec, horizon, busy float64) Result {
	res := Result{Frames: frames, PerStream: make([]StreamStats, len(streams))}
	for si := range streams {
		st := &res.PerStream[si]
		st.MinLat = math.Inf(1)
	}
	completed := make([]int, len(streams))
	for _, f := range frames {
		st := &res.PerStream[f.Stream]
		st.Frames++
		l := f.Latency()
		st.MeanLat += l
		st.MinLat = math.Min(st.MinLat, l)
		st.MaxLat = math.Max(st.MaxLat, l)
		st.MaxWait = math.Max(st.MaxWait, f.Wait())
		if f.Finish <= horizon {
			completed[f.Stream]++
		}
	}
	for si := range res.PerStream {
		st := &res.PerStream[si]
		if st.Frames > 0 {
			st.MeanLat /= float64(st.Frames)
			st.Jitter = st.MaxLat - st.MinLat
			st.Throughput = float64(completed[si]) / horizon
		} else {
			st.MinLat = 0
		}
		res.MaxJitter = math.Max(res.MaxJitter, st.Jitter)
		res.MaxWait = math.Max(res.MaxWait, st.MaxWait)
	}
	res.Utilization = busy / horizon
	return res
}

// Assignment maps each stream index to a server index (or -1 = unassigned,
// which drops the stream from the simulation).
type Assignment []int

// SimulateCluster partitions the streams by assignment and simulates each
// server independently (uplinks are dedicated per-camera channels, as in
// the paper's model where only server uplink bandwidth matters).
func SimulateCluster(streams []StreamSpec, servers []Server, assign Assignment, horizon float64) []Result {
	if len(assign) != len(streams) {
		panic(fmt.Sprintf("cluster: %d assignments for %d streams", len(assign), len(streams)))
	}
	out := make([]Result, len(servers))
	for j := range servers {
		var sub []StreamSpec
		for i, a := range assign {
			if a == j {
				sub = append(sub, streams[i])
			}
		}
		out[j] = SimulateServer(sub, servers[j], horizon)
	}
	return out
}

// MaxJitter returns the worst per-stream jitter across the cluster results.
func MaxJitter(results []Result) float64 {
	var m float64
	for _, r := range results {
		m = math.Max(m, r.MaxJitter)
	}
	return m
}

// MeanLatency returns the frame-weighted mean end-to-end latency across the
// cluster results.
func MeanLatency(results []Result) float64 {
	var sum float64
	var n int
	for _, r := range results {
		for _, f := range r.Frames {
			sum += f.Latency()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ZeroJitterOffsets assigns capture offsets so that the streams' *server
// arrivals* follow the pattern prescribed by the proof of Theorem 1:
// a(τ₁) = C, a(τ_k) = C + Σ_{i<k} p_i. Streams must already be grouped so
// that Σ p_i ≤ gcd of the periods; the offsets then guarantee that no two
// frames ever contend on the server.
//
// Because a frame reaches the server one transmission delay after capture,
// the capture offset compensates for the per-stream delay bits/uplink; the
// common shift C = max(tx) keeps all capture offsets non-negative.
func ZeroJitterOffsets(streams []StreamSpec, uplink float64) []StreamSpec {
	return ZeroJitterOffsetsOn(streams, Server{Uplink: uplink})
}

// ZeroJitterOffsetsOn is ZeroJitterOffsets for a heterogeneous server: the
// back-to-back slot accumulation uses the server's *effective* service
// times p_i/speed, which is what Theorem 1's proof actually needs — the
// k-th stream's frame must arrive exactly when the server finishes the
// previous k-1 frames of the slot train. The grouping side of the
// guarantee is the speed-scaled Const2: Σ p_i ≤ gcd(T) · speed. At
// speed 1 the offsets are bit-identical to the homogeneous variant.
func ZeroJitterOffsetsOn(streams []StreamSpec, srv Server) []StreamSpec {
	out := append([]StreamSpec(nil), streams...)
	ZeroJitterOffsetsInPlaceOn(out, srv)
	return out
}
