// Empirical invariant tests: the check package's verdicts must agree with
// what the discrete-event simulator actually observes. These live in an
// external test package because check imports sched, which imports cluster.
package cluster_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sched"
)

// TestVerifiedPlanSimulatesZeroJitter closes the loop between the exact
// verifier and the simulator: a plan that VerifyAssignment accepts, with the
// Theorem 1 offsets applied, must show (numerically) zero delay jitter in
// simulation, and ObserveJitter must agree that the zero-jitter claim holds.
func TestVerifiedPlanSimulatesZeroJitter(t *testing.T) {
	streams := []sched.Stream{
		{Video: 0, Period: sched.RatFromFPS(10), Proc: 0.03, Bits: 4e5},
		{Video: 1, Period: sched.RatFromFPS(5), Proc: 0.05, Bits: 8e5},
		{Video: 2, Period: sched.RatFromFPS(10), Proc: 0.02, Bits: 2e5},
	}
	servers := []cluster.Server{
		{Name: "s0", Uplink: 2e7},
		{Name: "s1", Uplink: 1e7},
	}
	plan, err := sched.Schedule(streams, servers)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(nil)
	chk := check.New(true, rec)
	if err := chk.VerifyAssignment(streams, plan.StreamServer, len(servers)); err != nil {
		t.Fatalf("exact verifier rejected Algorithm 1's plan: %v", err)
	}

	specs, assign := plan.ToClusterStreams(streams, servers)
	results := cluster.SimulateCluster(specs, servers, assign, 30)
	jitter := cluster.MaxJitter(results)
	if jitter > cluster.JitterEps {
		t.Fatalf("verified plan simulated with jitter %g > eps %g", jitter, cluster.JitterEps)
	}
	if err := chk.ObserveJitter(jitter, true); err != nil {
		t.Fatalf("ObserveJitter rejected a genuinely zero-jitter run: %v", err)
	}
	snap := rec.Registry().Snapshot()
	if snap.Counters["check_violations_total"] != 0 {
		t.Fatalf("clean run recorded %d violations", snap.Counters["check_violations_total"])
	}
}

// TestObserveJitterFlagsContendingOffsets drives the simulator into the
// Figure 4 failure mode — non-harmonic periods with naive all-zero capture
// offsets — and requires both that the simulation really jitters and that
// ObserveJitter surfaces the broken zero-jitter claim: as a metric under a
// relaxed checker, as a hard error under a strict one.
func TestObserveJitterFlagsContendingOffsets(t *testing.T) {
	specs := []cluster.StreamSpec{
		{Name: "a", Period: 0.1, Proc: 0.05},
		{Name: "b", Period: 0.15, Proc: 0.05},
	}
	srv := cluster.Server{Name: "s0", Uplink: 0}
	res := cluster.SimulateServer(specs, srv, 30)
	if res.MaxJitter <= cluster.JitterEps {
		t.Fatalf("contending periods simulated with jitter %g — expected visible jitter", res.MaxJitter)
	}

	rec := obs.NewRecorder(nil)
	relaxed := check.New(false, rec)
	if err := relaxed.ObserveJitter(res.MaxJitter, true); err != nil {
		t.Fatalf("relaxed checker returned an error: %v", err)
	}
	snap := rec.Registry().Snapshot()
	if snap.Counters["check_violation_zero_jitter"] == 0 {
		t.Fatal("relaxed checker did not record the zero_jitter violation")
	}

	strict := check.New(true, rec)
	if err := strict.ObserveJitter(res.MaxJitter, true); err == nil {
		t.Fatal("strict checker accepted a violated zero-jitter claim")
	}
	// The same jitter under a truthful (non-zero-jitter) claim is fine.
	if err := strict.ObserveJitter(res.MaxJitter, false); err != nil {
		t.Fatalf("jitter with no zero-jitter claim must not error: %v", err)
	}
}
