//go:build !race

package cluster

import "testing"

// TestArenaSimulateZeroAlloc pins the steady-state allocation budget of the
// arena simulator: after the first epoch sizes the buffers, replaying the
// same workload must not touch the heap. (Skipped under -race, which
// instruments allocation.)
func TestArenaSimulateZeroAlloc(t *testing.T) {
	streams, srv := arenaWorkload(16)
	a := NewArena()
	a.SimulateServer(streams, srv, 5) // size the buffers
	if n := testing.AllocsPerRun(20, func() { a.SimulateServer(streams, srv, 5) }); n != 0 {
		t.Fatalf("warm Arena.SimulateServer allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { ZeroJitterOffsetsInPlace(streams, srv.Uplink) }); n != 0 {
		t.Fatalf("ZeroJitterOffsetsInPlace allocates %v times per run, want 0", n)
	}
}
