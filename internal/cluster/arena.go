package cluster

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Arena holds the reusable simulation buffers of one server's discrete-event
// run: the FrameRecord log, the per-stream merge cursors, transmission
// delays, and the per-stream summary slots. Reusing one arena across epochs
// turns the simulator's per-epoch allocation (dominated by the frame log)
// into zero steady-state allocations once the buffers have grown to the
// episode's frame volume.
//
// Ownership rules (see DESIGN.md "Scaling"): an Arena is single-goroutine —
// the fault-tolerant runtime keeps one per server worker. The Result
// returned by Arena.SimulateServer aliases the arena's buffers and is valid
// only until the next call on the same arena; callers that retain frames or
// stats across epochs must copy them out.
type Arena struct {
	tx        []float64
	next      []int
	frames    []FrameRecord
	per       []StreamStats
	completed []int
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }

func (a *Arena) growStreams(n int) {
	if cap(a.tx) < n {
		a.tx = make([]float64, n)
		a.next = make([]int, n)
		a.per = make([]StreamStats, n)
		a.completed = make([]int, n)
	}
	a.tx = a.tx[:n]
	a.next = a.next[:n]
	a.per = a.per[:n]
	a.completed = a.completed[:n]
}

// SimulateServer is SimulateServer computing into the arena's buffers. The
// simulated records and statistics are bit-identical to the package-level
// function; only the memory they live in differs (see the ownership rules
// on Arena).
func (a *Arena) SimulateServer(streams []StreamSpec, srv Server, horizon float64) Result {
	if horizon <= 0 {
		panic(fmt.Sprintf("cluster: non-positive horizon %v", horizon))
	}
	a.growStreams(len(streams))
	tx := a.tx
	total := 0
	for si, s := range streams {
		if s.Period <= 0 {
			panic(fmt.Sprintf("cluster: stream %d has period %v", si, s.Period))
		}
		tx[si] = 0
		if srv.Uplink > 0 {
			tx[si] = s.Bits / srv.Uplink
		}
		if n := math.Ceil((horizon - s.Offset) / s.Period); n > 0 {
			total += int(n)
		}
	}
	// Same k-way arrival merge as SimulateServer: each stream's arrivals are
	// already sorted, ties break toward the lower stream index.
	if cap(a.frames) < total {
		a.frames = make([]FrameRecord, 0, total)
	}
	frames := a.frames[:0]
	next := a.next
	for si := range next {
		next[si] = 0
	}
	for {
		best, bestArr := -1, math.Inf(1)
		for si := range streams {
			cap := streams[si].Offset + float64(next[si])*streams[si].Period
			if cap >= horizon {
				continue
			}
			if arr := cap + tx[si]; arr < bestArr {
				best, bestArr = si, arr
			}
		}
		if best < 0 {
			break
		}
		frames = append(frames, FrameRecord{
			Stream:  best,
			Seq:     next[best],
			Capture: streams[best].Offset + float64(next[best])*streams[best].Period,
			Arrive:  bestArr,
		})
		next[best]++
	}
	a.frames = frames

	// Speed-scaled service, mirroring the package-level SimulateServer
	// operation for operation (division by speed 1 is an exact identity).
	spd := srv.Speed()
	free := 0.0
	busy := 0.0
	for i := range frames {
		f := &frames[i]
		f.Start = math.Max(f.Arrive, free)
		proc := streams[f.Stream].Proc / spd
		f.Finish = f.Start + proc
		free = f.Finish
		busy += proc
	}
	return a.summarizeInto(frames, streams, horizon, busy)
}

// summarizeInto is summarize writing the per-stream statistics into the
// arena's slots instead of fresh slices.
func (a *Arena) summarizeInto(frames []FrameRecord, streams []StreamSpec, horizon, busy float64) Result {
	res := Result{Frames: frames, PerStream: a.per}
	completed := a.completed
	for si := range streams {
		a.per[si] = StreamStats{MinLat: math.Inf(1)}
		completed[si] = 0
	}
	for _, f := range frames {
		st := &res.PerStream[f.Stream]
		st.Frames++
		l := f.Latency()
		st.MeanLat += l
		st.MinLat = math.Min(st.MinLat, l)
		st.MaxLat = math.Max(st.MaxLat, l)
		st.MaxWait = math.Max(st.MaxWait, f.Wait())
		if f.Finish <= horizon {
			completed[f.Stream]++
		}
	}
	for si := range res.PerStream {
		st := &res.PerStream[si]
		if st.Frames > 0 {
			st.MeanLat /= float64(st.Frames)
			st.Jitter = st.MaxLat - st.MinLat
			st.Throughput = float64(completed[si]) / horizon
		} else {
			st.MinLat = 0
		}
		res.MaxJitter = math.Max(res.MaxJitter, st.Jitter)
		res.MaxWait = math.Max(res.MaxWait, st.MaxWait)
	}
	res.Utilization = busy / horizon
	return res
}

// SimulateServerRecorded is SimulateServerRecorded running through the
// arena: identical simulation and telemetry, reused buffers.
func (a *Arena) SimulateServerRecorded(streams []StreamSpec, srv Server, horizon float64, rec *obs.Recorder, server int) Result {
	return a.SimulateServerRecordedCtx(context.Background(), streams, srv, horizon, rec, server)
}

// SimulateServerRecordedCtx is SimulateServerRecorded with trace-context
// propagation, mirroring the package-level SimulateServerRecordedCtx.
func (a *Arena) SimulateServerRecordedCtx(ctx context.Context, streams []StreamSpec, srv Server, horizon float64, rec *obs.Recorder, server int) Result {
	res := a.SimulateServer(streams, srv, horizon)
	recordServerResult(ctx, rec, server, len(streams), res)
	return res
}

// ZeroJitterOffsetsInPlace applies the Theorem 1 offsets of
// ZeroJitterOffsets directly to streams, allocating nothing. The computed
// offsets are bit-identical to the copying variant.
func ZeroJitterOffsetsInPlace(streams []StreamSpec, uplink float64) {
	ZeroJitterOffsetsInPlaceOn(streams, Server{Uplink: uplink})
}

// ZeroJitterOffsetsInPlaceOn is ZeroJitterOffsetsOn writing directly into
// streams, allocating nothing: the slot train accumulates the server's
// effective service times p_i/speed.
func ZeroJitterOffsetsInPlaceOn(streams []StreamSpec, srv Server) {
	uplink := srv.Uplink
	spd := srv.Speed()
	var maxTx float64
	for _, s := range streams {
		if uplink > 0 {
			maxTx = math.Max(maxTx, s.Bits/uplink)
		}
	}
	acc := 0.0
	for i := range streams {
		tx := 0.0
		if uplink > 0 {
			tx = streams[i].Bits / uplink
		}
		streams[i].Offset = maxTx + acc - tx
		acc += streams[i].Proc / spd
	}
}
