package cluster

import "repro/internal/obs"

// SimulateServerRecorded is SimulateServer with telemetry: after the
// simulation it emits one "cluster.server" event (server index,
// utilization, max jitter, max wait, frame count) on rec and feeds the
// cluster_server_utilization and cluster_server_jitter_seconds histograms
// of rec's registry. A nil rec makes it exactly SimulateServer. Safe to
// call from concurrent per-server goroutines.
func SimulateServerRecorded(streams []StreamSpec, srv Server, horizon float64, rec *obs.Recorder, server int) Result {
	res := SimulateServer(streams, srv, horizon)
	if rec == nil {
		return res
	}
	reg := rec.Registry()
	reg.Histogram("cluster_server_utilization", obs.UnitBuckets).Observe(res.Utilization)
	reg.Histogram("cluster_server_jitter_seconds", obs.DefBuckets).Observe(res.MaxJitter)
	rec.Event("cluster.server",
		obs.F("server", float64(server)),
		obs.F("streams", float64(len(streams))),
		obs.F("frames", float64(len(res.Frames))),
		obs.F("utilization", res.Utilization),
		obs.F("max_jitter", res.MaxJitter),
		obs.F("max_wait", res.MaxWait))
	return res
}
