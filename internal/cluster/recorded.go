package cluster

import (
	"context"

	"repro/internal/obs"
)

// SimulateServerRecorded is SimulateServer with telemetry: after the
// simulation it emits one "cluster.server" event (server index,
// utilization, max jitter, max wait, frame count) on rec and feeds the
// cluster_server_utilization and cluster_server_jitter_seconds histograms
// of rec's registry. A nil rec makes it exactly SimulateServer. Safe to
// call from concurrent per-server goroutines.
func SimulateServerRecorded(streams []StreamSpec, srv Server, horizon float64, rec *obs.Recorder, server int) Result {
	return SimulateServerRecordedCtx(context.Background(), streams, srv, horizon, rec, server)
}

// SimulateServerRecordedCtx is SimulateServerRecorded with trace-context
// propagation: the "cluster.server" event is attributed to the span
// carried by ctx (normally the per-server DES span), so trace exporters
// can place it on the right lane.
func SimulateServerRecordedCtx(ctx context.Context, streams []StreamSpec, srv Server, horizon float64, rec *obs.Recorder, server int) Result {
	res := SimulateServer(streams, srv, horizon)
	recordServerResult(ctx, rec, server, len(streams), res)
	return res
}

// recordServerResult emits the per-server DES telemetry shared by the
// package-level and Arena simulation entry points. Nil rec: no-op.
func recordServerResult(ctx context.Context, rec *obs.Recorder, server, nStreams int, res Result) {
	if rec == nil {
		return
	}
	reg := rec.Registry()
	reg.Histogram("cluster_server_utilization", obs.UnitBuckets).Observe(res.Utilization)
	reg.Histogram("cluster_server_jitter_seconds", obs.DefBuckets).Observe(res.MaxJitter)
	rec.EventCtx(ctx, "cluster.server",
		obs.F("server", float64(server)),
		obs.F("streams", float64(nStreams)),
		obs.F("frames", float64(len(res.Frames))),
		obs.F("utilization", res.Utilization),
		obs.F("max_jitter", res.MaxJitter),
		obs.F("max_wait", res.MaxWait))
}
