package cluster

import (
	"math"
	"reflect"
	"testing"
)

func arenaWorkload(n int) ([]StreamSpec, Server) {
	streams := make([]StreamSpec, n)
	periods := []float64{1.0 / 30, 1.0 / 15, 1.0 / 10, 1.0 / 5}
	for i := range streams {
		streams[i] = StreamSpec{
			Period: periods[i%len(periods)],
			Proc:   0.001 + 0.0004*float64(i%7),
			Bits:   1e5 * float64(1+i%9),
			Offset: 0.0003 * float64(i%11),
		}
	}
	return streams, Server{Uplink: 40e6}
}

// TestArenaMatchesSimulateServer pins the arena path bit-exact against the
// allocating simulator across repeated reuse, shrinking workloads, and a
// zero-uplink server.
func TestArenaMatchesSimulateServer(t *testing.T) {
	a := NewArena()
	cases := []struct {
		n       int
		srv     Server
		horizon float64
	}{
		{12, Server{Uplink: 40e6}, 3},
		{12, Server{Uplink: 40e6}, 3}, // same size: buffers warm
		{5, Server{Uplink: 0}, 2},     // shrink + no uplink
		{20, Server{Uplink: 15e6}, 1.5},
		{0, Server{Uplink: 1e6}, 1}, // empty server
	}
	for ci, tc := range cases {
		streams, _ := arenaWorkload(tc.n)
		want := SimulateServer(streams, tc.srv, tc.horizon)
		got := a.SimulateServer(streams, tc.srv, tc.horizon)
		if !reflect.DeepEqual(want.Frames, got.Frames) {
			t.Fatalf("case %d: frames diverged (%d vs %d records)", ci, len(want.Frames), len(got.Frames))
		}
		if !reflect.DeepEqual(want.PerStream, got.PerStream) {
			t.Fatalf("case %d: per-stream stats diverged:\n%+v\n%+v", ci, want.PerStream, got.PerStream)
		}
		if want.MaxJitter != got.MaxJitter || want.MaxWait != got.MaxWait || want.Utilization != got.Utilization {
			t.Fatalf("case %d: aggregates diverged: %+v vs %+v", ci, want, got)
		}
	}
}

// TestZeroJitterOffsetsInPlace pins the in-place offsets bit-exact against
// the copying variant.
func TestZeroJitterOffsetsInPlace(t *testing.T) {
	for _, uplink := range []float64{25e6, 0} {
		streams, _ := arenaWorkload(9)
		want := ZeroJitterOffsets(streams, uplink)
		ZeroJitterOffsetsInPlace(streams, uplink)
		for i := range streams {
			if streams[i].Offset != want[i].Offset {
				t.Fatalf("uplink %g: offset[%d] = %g, want %g", uplink, i, streams[i].Offset, want[i].Offset)
			}
		}
		// The in-place schedule must still be zero-jitter when simulated.
		if uplink > 0 {
			res := SimulateServer(streams, Server{Uplink: uplink}, 5)
			if res.MaxJitter > JitterEps {
				t.Fatalf("in-place offsets jitter %g", res.MaxJitter)
			}
		}
	}
}

// TestArenaResultAliasing documents the reuse contract: results from the
// same arena alias its buffers, so a second call overwrites the first's
// view. This is intentional; retainers must copy.
func TestArenaResultAliasing(t *testing.T) {
	a := NewArena()
	streams, srv := arenaWorkload(4)
	r1 := a.SimulateServer(streams, srv, 2)
	first := math.NaN()
	if len(r1.Frames) > 0 {
		first = r1.Frames[0].Finish
	}
	r2 := a.SimulateServer(streams, srv, 2)
	if len(r1.Frames) > 0 && len(r2.Frames) > 0 && &r1.Frames[0] != &r2.Frames[0] {
		t.Fatal("expected results from one arena to alias the same buffers")
	}
	if len(r2.Frames) > 0 && r2.Frames[0].Finish != first {
		t.Fatalf("deterministic rerun changed results: %g vs %g", r2.Frames[0].Finish, first)
	}
}
