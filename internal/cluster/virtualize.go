package cluster

import (
	"fmt"
	"math"
)

// PhysicalServer is a heterogeneous edge machine: compute capacity in
// multiples of the homogeneous scheduling unit, plus its uplink bandwidth.
type PhysicalServer struct {
	Name     string
	Units    float64 // compute capacity in scheduling units (≥ 0)
	Uplink   float64 // bits/s, shared by the VMs carved from this machine
}

// Virtualize implements the paper's Section 3 note that "heterogeneous
// servers can be virtualized as multiple homogeneous VMs or containers":
// each physical machine contributes ⌊Units⌋ unit-capacity servers, and the
// machine's uplink is divided evenly among them. Fractional capacity below
// one unit is dropped — a unit is the paper's atomic scheduling target.
func Virtualize(phys []PhysicalServer) ([]Server, error) {
	var out []Server
	for _, p := range phys {
		if p.Units < 0 || math.IsNaN(p.Units) {
			return nil, fmt.Errorf("cluster: server %q has invalid capacity %v", p.Name, p.Units)
		}
		n := int(p.Units)
		if n == 0 {
			continue
		}
		share := p.Uplink / float64(n)
		for k := 0; k < n; k++ {
			out = append(out, Server{
				Name:   fmt.Sprintf("%s/vm%d", p.Name, k),
				Uplink: share,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no whole scheduling units in %d physical servers", len(phys))
	}
	return out, nil
}
