package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleStreamNoContention(t *testing.T) {
	streams := []StreamSpec{{Name: "v1", Period: 0.2, Proc: 0.05, Bits: 1e5}}
	srv := Server{Name: "e1", Uplink: 1e7} // tx = 0.01 s
	res := SimulateServer(streams, srv, 10)
	if res.PerStream[0].Frames != 50 {
		t.Fatalf("frames = %d, want 50", res.PerStream[0].Frames)
	}
	wantLat := 0.05 + 0.01
	if math.Abs(res.PerStream[0].MeanLat-wantLat) > 1e-9 {
		t.Fatalf("latency = %v, want %v", res.PerStream[0].MeanLat, wantLat)
	}
	if res.MaxJitter > JitterEps {
		t.Fatalf("jitter = %v", res.MaxJitter)
	}
	if math.Abs(res.Utilization-0.25) > 1e-9 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
}

func TestOverloadAccumulatesLatency(t *testing.T) {
	// Figure 3(a): a stream whose processing time exceeds its period
	// accumulates latency without bound.
	streams := []StreamSpec{{Name: "v2", Period: 0.1, Proc: 0.15, Bits: 0}}
	res := SimulateServer(streams, Server{Uplink: 0}, 20)
	st := res.PerStream[0]
	if st.MaxLat < 5.0 {
		t.Fatalf("overloaded stream max latency %v, want growing into seconds", st.MaxLat)
	}
	if st.MaxLat <= st.MinLat*10 {
		t.Fatalf("latency did not accumulate: min %v max %v", st.MinLat, st.MaxLat)
	}
	// Throughput is capped by 1/Proc, not the arrival rate.
	if st.Throughput > 1/0.15+0.5 {
		t.Fatalf("throughput %v exceeds service capacity", st.Throughput)
	}
}

func TestContentionBetweenTwoStreams(t *testing.T) {
	// Figure 3(a)'s two-video example: Video 1 (5 fps) and Video 2 (10 fps)
	// with proc times that overflow the server capacity cause queueing.
	streams := []StreamSpec{
		{Name: "v1", Period: 0.2, Proc: 0.1, Bits: 0},
		{Name: "v2", Period: 0.1, Proc: 0.08, Bits: 0},
	}
	// Σ p·s = 0.5 + 0.8 = 1.3 > 1 → overload → growing delays.
	res := SimulateServer(streams, Server{Uplink: 0}, 30)
	if res.MaxWait < 1 {
		t.Fatalf("expected queueing under overload, max wait %v", res.MaxWait)
	}
	if res.Utilization < 0.99 {
		t.Fatalf("overloaded server should be saturated, utilization %v", res.Utilization)
	}
}

func TestDelayJitterFromPoorGrouping(t *testing.T) {
	// Figure 4: two feasible-utilization streams with mismatched periods
	// still jitter when their slots collide.
	bad := []StreamSpec{
		{Name: "v1", Period: 0.3, Proc: 0.12, Bits: 0},
		{Name: "v3", Period: 0.2, Proc: 0.05, Bits: 0},
	}
	// Σ p = 0.17 > gcd(0.3, 0.2) = 0.1 → Const2 violated → jitter expected.
	res := SimulateServer(bad, Server{Uplink: 0}, 60)
	if res.MaxJitter <= JitterEps {
		t.Fatalf("expected jitter from poor grouping, got %v", res.MaxJitter)
	}
}

func TestZeroJitterTheorem1(t *testing.T) {
	// Streams satisfying Σ p ≤ gcd(T) with the theorem's offsets must show
	// exactly zero jitter and zero waiting.
	streams := []StreamSpec{
		{Name: "a", Period: 0.2, Proc: 0.04, Bits: 8e4},
		{Name: "b", Period: 0.4, Proc: 0.06, Bits: 4e4},
		{Name: "c", Period: 0.2, Proc: 0.05, Bits: 2e4},
	}
	// gcd(0.2, 0.4, 0.2) = 0.2 ≥ 0.04+0.06+0.05 = 0.15 ✓
	srv := Server{Uplink: 1e7}
	res := SimulateServer(ZeroJitterOffsets(streams, srv.Uplink), srv, 50)
	if res.MaxWait > JitterEps {
		t.Fatalf("max wait = %v, want 0", res.MaxWait)
	}
	if res.MaxJitter > JitterEps {
		t.Fatalf("max jitter = %v, want 0", res.MaxJitter)
	}
}

// Property-based check of Theorem 1: random stream sets that satisfy
// Σ p ≤ gcd(T) (with fps-derived periods) never jitter under the
// prescribed offsets.
func TestZeroJitterTheorem1Property(t *testing.T) {
	fpsChoices := []int{1, 2, 5, 10, 15, 30}
	f := func(seed uint64) bool {
		rng := newRng(seed)
		k := 1 + int(seed%4)
		var streams []StreamSpec
		lcm := 1
		for i := 0; i < k; i++ {
			fps := fpsChoices[rng.IntN(len(fpsChoices))]
			lcm = lcmInt(lcm, fps)
			streams = append(streams, StreamSpec{
				Period: 1 / float64(fps),
				Bits:   float64(rng.IntN(100000)),
			})
		}
		gcd := 1 / float64(lcm)
		// Divide the gcd budget among streams with random shares.
		shares := make([]float64, k)
		var tot float64
		for i := range shares {
			shares[i] = rng.Float64() + 0.01
			tot += shares[i]
		}
		for i := range streams {
			streams[i].Proc = 0.95 * gcd * shares[i] / tot
		}
		srv := Server{Uplink: 1e7}
		res := SimulateServer(ZeroJitterOffsets(streams, srv.Uplink), srv, 20)
		return res.MaxJitter <= JitterEps && res.MaxWait <= JitterEps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCluster(t *testing.T) {
	streams := []StreamSpec{
		{Name: "a", Period: 0.2, Proc: 0.05},
		{Name: "b", Period: 0.2, Proc: 0.05},
		{Name: "c", Period: 0.5, Proc: 0.3},
	}
	servers := []Server{{Name: "e1", Uplink: 1e7}, {Name: "e2", Uplink: 2e7}}
	results := SimulateCluster(streams, servers, Assignment{0, 1, 1}, 10)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].PerStream[0].Frames != 50 {
		t.Fatalf("server 0 frames = %d", results[0].PerStream[0].Frames)
	}
	if len(results[1].PerStream) != 2 {
		t.Fatalf("server 1 streams = %d", len(results[1].PerStream))
	}
	if MeanLatency(results) <= 0 {
		t.Fatal("mean latency must be positive")
	}
	if MaxJitter(results) < 0 {
		t.Fatal("max jitter negative")
	}
}

func TestUnassignedStreamDropped(t *testing.T) {
	streams := []StreamSpec{{Name: "a", Period: 0.2, Proc: 0.05}}
	results := SimulateCluster(streams, []Server{{Uplink: 1e7}}, Assignment{-1}, 5)
	if len(results[0].Frames) != 0 {
		t.Fatal("unassigned stream was simulated")
	}
}

func TestSimulatePanicsOnBadInput(t *testing.T) {
	mustPanic(t, func() { SimulateServer(nil, Server{}, 0) })
	mustPanic(t, func() {
		SimulateServer([]StreamSpec{{Period: 0}}, Server{}, 1)
	})
	mustPanic(t, func() {
		SimulateCluster([]StreamSpec{{Period: 1}}, nil, Assignment{}, 1)
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestTransmissionDelayIncludedInLatency(t *testing.T) {
	streams := []StreamSpec{{Period: 1, Proc: 0.01, Bits: 1e6}}
	res := SimulateServer(streams, Server{Uplink: 1e6}, 5) // tx = 1 s
	if math.Abs(res.PerStream[0].MeanLat-1.01) > 1e-9 {
		t.Fatalf("latency = %v, want 1.01", res.PerStream[0].MeanLat)
	}
}

func TestVirtualize(t *testing.T) {
	phys := []PhysicalServer{
		{Name: "big", Units: 3.7, Uplink: 30e6},
		{Name: "small", Units: 1, Uplink: 10e6},
		{Name: "tiny", Units: 0.5, Uplink: 5e6}, // below one unit: dropped
	}
	vms, err := Virtualize(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 4 {
		t.Fatalf("got %d VMs, want 4", len(vms))
	}
	// big contributes 3 VMs at 10 Mbps each; small 1 VM at 10 Mbps.
	for _, vm := range vms[:3] {
		if math.Abs(vm.Uplink-10e6) > 1 {
			t.Fatalf("big VM uplink %v", vm.Uplink)
		}
	}
	if vms[3].Uplink != 10e6 {
		t.Fatalf("small VM uplink %v", vms[3].Uplink)
	}
	if vms[0].Name == vms[1].Name {
		t.Fatal("VM names not unique")
	}

	if _, err := Virtualize([]PhysicalServer{{Units: -1}}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := Virtualize([]PhysicalServer{{Units: 0.3}}); err == nil {
		t.Error("no-unit cluster accepted")
	}
}

func BenchmarkSimulateServer(b *testing.B) {
	streams := []StreamSpec{
		{Period: 1.0 / 30, Proc: 0.01, Bits: 1e5},
		{Period: 1.0 / 15, Proc: 0.02, Bits: 2e5},
		{Period: 1.0 / 10, Proc: 0.03, Bits: 3e5},
	}
	srv := Server{Uplink: 1e7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateServer(streams, srv, 60)
	}
}
