package cluster

import (
	"cmp"
	"container/heap"
	"math"
	"slices"
)

// SimulateServerEDF runs the same workload as SimulateServer but serves
// frames in non-preemptive earliest-deadline-first order, each frame's
// deadline being its capture time plus its stream's period. The periodic
// real-time scheduling literature the paper cites (Jeffay et al., Minaeva
// & Hanzálek) uses EDF as the classic dynamic-priority policy; comparing
// it against FIFO shows why PaMO's problem needs *placement-time* jitter
// control rather than a smarter queue: EDF reorders waiting frames but
// cannot remove contention.
func SimulateServerEDF(streams []StreamSpec, srv Server, horizon float64) Result {
	if horizon <= 0 {
		panic("cluster: non-positive horizon")
	}
	var frames []FrameRecord
	deadlines := map[int]float64{} // frame index -> absolute deadline
	for si, s := range streams {
		if s.Period <= 0 {
			panic("cluster: non-positive period")
		}
		tx := 0.0
		if srv.Uplink > 0 {
			tx = s.Bits / srv.Uplink
		}
		for k := 0; ; k++ {
			cap := s.Offset + float64(k)*s.Period
			if cap >= horizon {
				break
			}
			frames = append(frames, FrameRecord{
				Stream: si, Seq: k, Capture: cap, Arrive: cap + tx,
			})
			deadlines[len(frames)-1] = cap + s.Period
		}
	}
	order := make([]int, len(frames))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		fa, fb := frames[a], frames[b]
		if fa.Arrive != fb.Arrive {
			return cmp.Compare(fa.Arrive, fb.Arrive)
		}
		if fa.Stream != fb.Stream {
			return fa.Stream - fb.Stream
		}
		return fa.Seq - fb.Seq
	})

	// Event loop: pop the released frame with the earliest deadline.
	pq := &edfQueue{frames: frames, deadlines: deadlines}
	clock := 0.0
	busy := 0.0
	next := 0
	served := 0
	for served < len(frames) {
		// Release everything that has arrived by the clock.
		for next < len(order) && frames[order[next]].Arrive <= clock+1e-15 {
			heap.Push(pq, order[next])
			next++
		}
		if pq.Len() == 0 {
			// Idle until the next arrival.
			clock = frames[order[next]].Arrive
			continue
		}
		fi := heap.Pop(pq).(int)
		f := &frames[fi]
		f.Start = math.Max(clock, f.Arrive)
		f.Finish = f.Start + streams[f.Stream].Proc
		clock = f.Finish
		busy += streams[f.Stream].Proc
		served++
	}

	return summarize(frames, streams, horizon, busy)
}

// edfQueue is a min-heap of frame indices keyed by deadline.
type edfQueue struct {
	frames    []FrameRecord
	deadlines map[int]float64
	items     []int
}

func (q *edfQueue) Len() int { return len(q.items) }
func (q *edfQueue) Less(a, b int) bool {
	da, db := q.deadlines[q.items[a]], q.deadlines[q.items[b]]
	if da != db {
		return da < db
	}
	return q.items[a] < q.items[b]
}
func (q *edfQueue) Swap(a, b int)       { q.items[a], q.items[b] = q.items[b], q.items[a] }
func (q *edfQueue) Push(x any)          { q.items = append(q.items, x.(int)) }
func (q *edfQueue) Pop() any {
	n := len(q.items)
	v := q.items[n-1]
	q.items = q.items[:n-1]
	return v
}
