package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEDFMatchesFIFOWithoutContention(t *testing.T) {
	streams := []StreamSpec{{Period: 0.2, Proc: 0.05, Bits: 1e5}}
	srv := Server{Uplink: 1e7}
	fifo := SimulateServer(streams, srv, 10)
	edf := SimulateServerEDF(streams, srv, 10)
	if fifo.PerStream[0].Frames != edf.PerStream[0].Frames {
		t.Fatalf("frame counts differ: %d vs %d", fifo.PerStream[0].Frames, edf.PerStream[0].Frames)
	}
	if math.Abs(fifo.PerStream[0].MeanLat-edf.PerStream[0].MeanLat) > 1e-9 {
		t.Fatalf("uncontended latencies differ: %v vs %v",
			fifo.PerStream[0].MeanLat, edf.PerStream[0].MeanLat)
	}
}

func TestEDFPrioritizesUrgentFrames(t *testing.T) {
	// A slow-period stream (long deadline) and a fast stream (short
	// deadline) arriving together: EDF serves the fast one first, FIFO
	// serves by arrival order (tie → lower stream index first).
	streams := []StreamSpec{
		{Period: 1.0, Proc: 0.05},  // stream 0: deadline +1.0
		{Period: 0.1, Proc: 0.05},  // stream 1: deadline +0.1
	}
	fifo := SimulateServer(streams, Server{}, 0.5)
	edf := SimulateServerEDF(streams, Server{}, 0.5)
	// Under FIFO the t=0 tie goes to stream 0; under EDF to stream 1.
	if fifo.Frames[0].Stream != 0 {
		t.Fatalf("FIFO tie-break changed: first served %d", fifo.Frames[0].Stream)
	}
	firstEDF := -1
	bestStart := math.Inf(1)
	for _, f := range edf.Frames {
		if f.Start < bestStart {
			bestStart = f.Start
			firstEDF = f.Stream
		}
	}
	if firstEDF != 1 {
		t.Fatalf("EDF did not serve the urgent stream first (got %d)", firstEDF)
	}
	// The fast stream's worst latency improves (or at least never worsens)
	// under EDF.
	if edf.PerStream[1].MaxLat > fifo.PerStream[1].MaxLat+1e-12 {
		t.Fatalf("EDF worsened the urgent stream: %v vs %v",
			edf.PerStream[1].MaxLat, fifo.PerStream[1].MaxLat)
	}
}

func TestEDFCannotRemoveOverloadJitter(t *testing.T) {
	// The motivating point: with Σ p·s > 1 no queueing policy helps —
	// latency still accumulates under EDF, so jitter control must happen
	// at placement time (the paper's Const2), not in the queue.
	streams := []StreamSpec{
		{Period: 0.2, Proc: 0.1},
		{Period: 0.1, Proc: 0.08},
	}
	res := SimulateServerEDF(streams, Server{}, 20)
	if res.MaxWait < 1 {
		t.Fatalf("EDF hid the overload: max wait %v", res.MaxWait)
	}
	if res.MaxJitter <= JitterEps {
		t.Fatalf("EDF produced zero jitter under overload: %v", res.MaxJitter)
	}
}

func TestEDFZeroJitterUnderConst2(t *testing.T) {
	// Conversely, a Const2-satisfying group with Theorem 1 offsets is
	// jitter-free under EDF too (no frame ever waits, so the policy is
	// irrelevant) — the sufficient condition is policy-agnostic.
	streams := []StreamSpec{
		{Period: 0.2, Proc: 0.04, Bits: 8e4},
		{Period: 0.4, Proc: 0.06, Bits: 4e4},
	}
	srv := Server{Uplink: 1e7}
	res := SimulateServerEDF(ZeroJitterOffsets(streams, srv.Uplink), srv, 30)
	if res.MaxJitter > JitterEps || res.MaxWait > JitterEps {
		t.Fatalf("jitter %v wait %v", res.MaxJitter, res.MaxWait)
	}
}

// Property: EDF and FIFO serve exactly the same set of frames with the
// same total busy time; only the order differs.
func TestEDFConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := newRng(seed)
		k := 1 + int(seed%3)
		var streams []StreamSpec
		for i := 0; i < k; i++ {
			streams = append(streams, StreamSpec{
				Period: []float64{0.1, 0.2, 0.5}[rng.IntN(3)],
				Proc:   0.01 + rng.Float64()*0.08,
				Offset: rng.Float64() * 0.1,
			})
		}
		fifo := SimulateServer(streams, Server{}, 5)
		edf := SimulateServerEDF(streams, Server{}, 5)
		if len(fifo.Frames) != len(edf.Frames) {
			return false
		}
		return math.Abs(fifo.Utilization-edf.Utilization) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulateServerEDF(b *testing.B) {
	streams := []StreamSpec{
		{Period: 1.0 / 30, Proc: 0.01, Bits: 1e5},
		{Period: 1.0 / 15, Proc: 0.02, Bits: 2e5},
		{Period: 1.0 / 10, Proc: 0.03, Bits: 3e5},
	}
	srv := Server{Uplink: 1e7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateServerEDF(streams, srv, 60)
	}
}
