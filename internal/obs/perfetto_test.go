package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// perfettoOut mirrors the exporter's output shape for test parsing.
type perfettoOut struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
}

// span builds a synthetic span event for exporter tests.
func span(name string, t, dur float64, trace, id, parent uint64) Event {
	return Event{T: t, Kind: "span", Name: name, DurSec: dur, Trace: trace, Span: id, Parent: parent}
}

func export(t *testing.T, events []Event) perfettoOut {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out perfettoOut
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	return out
}

// TestPerfettoNesting: a sequential parent/child/grandchild chain must land
// on one lane, nested by time containment, with the causal IDs in args.
func TestPerfettoNesting(t *testing.T) {
	events := []Event{
		// JSONL order is End() order: innermost first.
		span("grandchild", 0.2, 0.1, 2, 5, 3),
		span("child", 0.1, 0.3, 2, 3, 1),
		span("root", 0.0, 1.0, 2, 1, 0),
		{T: 0.25, Kind: "event", Name: "tick", Trace: 2, Parent: 5},
	}
	out := export(t, events)
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	lanes := map[string]int{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			lanes[e.Name] = e.Tid
			if e.Dur <= 0 || e.Pid != perfettoPid {
				t.Fatalf("bad span %+v", e)
			}
		case "i":
			if e.Name == "tick" && e.S != "t" {
				t.Fatalf("instant scope %q", e.S)
			}
		case "M":
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
	}
	if lanes["root"] != lanes["child"] || lanes["child"] != lanes["grandchild"] {
		t.Fatalf("sequential chain split across lanes: %v", lanes)
	}
	for _, e := range out.TraceEvents {
		if e.Ph == "X" && e.Name == "grandchild" {
			if e.Args["span_id"] != float64(5) || e.Args["parent_id"] != float64(3) || e.Args["trace_id"] != float64(2) {
				t.Fatalf("grandchild args %v", e.Args)
			}
		}
	}
}

// TestPerfettoConcurrentSiblings: overlapping siblings cannot share a lane —
// the exporter must spill them so neither is drawn inside the other.
func TestPerfettoConcurrentSiblings(t *testing.T) {
	events := []Event{
		span("cell", 0.1, 0.4, 9, 2, 1), // overlaps its sibling
		span("cell", 0.15, 0.4, 9, 3, 1),
		span("root", 0.0, 1.0, 9, 1, 0),
	}
	out := export(t, events)
	var cellLanes []int
	rootLane := -1
	for _, e := range out.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Name == "cell" {
			cellLanes = append(cellLanes, e.Tid)
		} else {
			rootLane = e.Tid
		}
	}
	if len(cellLanes) != 2 || cellLanes[0] == cellLanes[1] {
		t.Fatalf("concurrent siblings share a lane: %v", cellLanes)
	}
	// One of them may stack under the root; both lanes must have metadata.
	names := map[int]bool{}
	for _, e := range out.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names[e.Tid] = true
		}
	}
	for _, l := range append(cellLanes, rootLane) {
		if !names[l] {
			t.Fatalf("lane %d missing thread_name metadata", l)
		}
	}
}

// TestPerfettoDeterministic: the same stream exports to identical bytes.
func TestPerfettoDeterministic(t *testing.T) {
	events := []Event{
		span("b", 0.1, 0.2, 1, 3, 1),
		span("a", 0.1, 0.2, 1, 2, 1),
		span("root", 0, 0.5, 1, 1, 0),
		{T: 0.3, Kind: "event", Name: "e", Fields: Fields{"x": 1, "a": 2}},
	}
	var b1, b2 bytes.Buffer
	if err := WritePerfetto(&b1, events); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("export not deterministic")
	}
}

// TestPerfettoEmptyStream: no events still yields valid JSON with process
// metadata only.
func TestPerfettoEmptyStream(t *testing.T) {
	out := export(t, nil)
	if len(out.TraceEvents) != 1 || out.TraceEvents[0].Ph != "M" {
		t.Fatalf("empty stream export: %+v", out.TraceEvents)
	}
}

// TestPerfettoLedgerInstant: kind "ledger" events export as instants on
// their parent span's lane.
func TestPerfettoLedgerInstant(t *testing.T) {
	led := EpochLedger{Epoch: 1, Planned: 1, Realized: 0.5, DriftLoss: 0.5}
	events := []Event{
		span("epoch", 0, 1, 4, 1, 0),
		{T: 0.9, Kind: "ledger", Name: "epoch_ledger", Trace: 4, Parent: 1, Ledger: &led},
	}
	out := export(t, events)
	found := false
	for _, e := range out.TraceEvents {
		if e.Ph == "i" && e.Name == "epoch_ledger" {
			found = true
		}
	}
	if !found {
		t.Fatal("ledger did not export as an instant")
	}
}
