package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJSONLRoundTrip emits a stream of spans and events, reads it back,
// and checks both the parsed events and the summary aggregation.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)

	sp := rec.StartSpan("profiling", F("clips", 8))
	time.Sleep(time.Millisecond)
	sp.Field("profiles", 208)
	sp.End()
	rec.Event("iteration", F("iter", 1), F("best_benefit", 0.42))
	sp2 := rec.StartSpan("solution")
	sp2.End()
	sp3 := rec.StartSpan("solution")
	sp3.End()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	if events[0].Kind != "span" || events[0].Name != "profiling" {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[0].Fields["clips"] != 8 || events[0].Fields["profiles"] != 208 {
		t.Fatalf("span fields: %+v", events[0].Fields)
	}
	if events[0].DurSec < 0.001 {
		t.Fatalf("span duration %v too small", events[0].DurSec)
	}
	if events[1].Kind != "event" || events[1].Fields["best_benefit"] != 0.42 {
		t.Fatalf("event 1: %+v", events[1])
	}

	// File-side and recorder-side aggregations must agree.
	fromFile := SummarizeSpans(events)
	fromRec := rec.SpanSummary()
	if len(fromFile) != 2 || len(fromRec) != 2 {
		t.Fatalf("summaries: file %d, rec %d", len(fromFile), len(fromRec))
	}
	for i := range fromFile {
		if fromFile[i] != fromRec[i] {
			t.Fatalf("summary mismatch at %d: %+v vs %+v", i, fromFile[i], fromRec[i])
		}
	}
	byName := map[string]SpanStat{}
	for _, st := range fromFile {
		byName[st.Name] = st
	}
	if byName["solution"].Count != 2 || byName["profiling"].Count != 1 {
		t.Fatalf("counts: %+v", byName)
	}

	var table strings.Builder
	WriteSpanTable(&table, fromFile)
	for _, want := range []string{"span", "profiling", "solution", "total_s"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, table.String())
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"t\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

// TestRecorderConcurrent drives spans, events, and metrics from many
// goroutines; -race validates the locking, and the output must stay one
// valid JSON object per line.
func TestRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	const workers = 8
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := rec.StartSpan("work", F("worker", float64(w)))
				rec.Event("tick", F("i", float64(i)))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents on concurrent stream: %v", err)
	}
	if len(events) != 2*workers*per {
		t.Fatalf("got %d events, want %d", len(events), 2*workers*per)
	}
	sum := rec.SpanSummary()
	if len(sum) != 1 || sum[0].Count != workers*per {
		t.Fatalf("span summary: %+v", sum)
	}
}

// TestNilWriterRecorder checks the metrics-only mode: no sink, but spans
// still aggregate and the registry is live.
func TestNilWriterRecorder(t *testing.T) {
	rec := NewRecorder(nil)
	sp := rec.StartSpan("phase")
	sp.End()
	rec.Registry().Counter("n").Inc()
	if got := rec.SpanSummary(); len(got) != 1 || got[0].Count != 1 {
		t.Fatalf("span summary: %+v", got)
	}
	if rec.Registry().Counter("n").Value() != 1 {
		t.Fatal("registry not live without a sink")
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestNilRecorderSafe walks the full disabled surface.
func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	sp := rec.StartSpan("x", F("a", 1))
	sp.Field("b", 2)
	sp.End()
	rec.Event("y")
	if rec.Registry() != nil {
		t.Fatal("nil recorder must yield nil registry")
	}
	if rec.SpanSummary() != nil {
		t.Fatal("nil recorder must yield nil summary")
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestNilPathAllocatesZero asserts the disabled hot path allocates nothing
// — the contract that lets instrumentation stay unconditionally in place.
func TestNilPathAllocatesZero(t *testing.T) {
	var rec *Recorder
	reg := rec.Registry()
	c := reg.Counter("c")
	h := reg.Histogram("h", DefBuckets)
	allocs := testing.AllocsPerRun(100, func() {
		sp := rec.StartSpan("phase", F("k", 1))
		sp.Field("k2", 2)
		sp.End()
		rec.Event("ev", F("a", 1), F("b", 2))
		c.Inc()
		reg.Gauge("g").Set(3)
		h.Observe(0.01)
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry path allocates %v per op, want 0", allocs)
	}
}
