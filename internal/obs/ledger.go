package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"
)

// EpochLedger decomposes one epoch's benefit gap — planned benefit minus
// realized benefit — into named loss buckets, each attributed to a cause
// the control loop can act on:
//
//   - ShedLoss: benefit given up by the degradation policy's shed and
//     downgraded videos (planned-full vs planned-degraded, both on the
//     planning-time content and a healthy cluster).
//   - DriftLoss: benefit lost to content drift — the installed decision
//     scored on drifted clips vs the clips it was planned for.
//   - FaultLoss: benefit lost to the fault plane — down servers, stalled
//     cameras, degraded uplinks — i.e. drifted-healthy vs realized.
//   - ConflictLoss / FallbackLoss: the sharded control plane's arbiter
//     bounces and serial fallbacks. These protocol events cost latency,
//     not benefit, so their buckets are exactly 0 by construction; the
//     ledger still carries their counts (ConflictRetries, FellBack) so a
//     nonzero retry storm is visible next to the losses it risks causing.
//
// The invariant the ledger guarantees — and Close enforces to exact float
// equality — is
//
//	SumBuckets() == Planned - Realized
//
// under the canonical left-associated summation order of SumBuckets.
// DriftLoss is the residual bucket: it is seeded with its analytic value
// (planned-content vs drifted-content benefit) and then nudged by at most
// a few ULPs so the chain telescopes exactly; every other bucket keeps its
// analytically computed value bit-for-bit.
type EpochLedger struct {
	Epoch    int     `json:"epoch"`
	Planned  float64 `json:"planned"`  // benefit the planner thought it bought
	Realized float64 `json:"realized"` // benefit the epoch actually delivered

	ShedLoss     float64 `json:"shed_loss"`
	DriftLoss    float64 `json:"drift_loss"`
	FaultLoss    float64 `json:"fault_loss"`
	ConflictLoss float64 `json:"conflict_loss"`
	FallbackLoss float64 `json:"fallback_loss"`

	// Attribution detail: which streams/servers/cells the buckets point at.
	ConflictRetries  int   `json:"conflict_retries,omitempty"` // arbiter bounces this epoch
	FellBack         bool  `json:"fell_back,omitempty"`        // sharded solve fell back to serial
	ReplanFailed     bool  `json:"replan_failed,omitempty"`    // scheduler errored, stale plan ran
	Degraded         bool  `json:"degraded,omitempty"`
	ShedVideos       []int `json:"shed_videos,omitempty"`
	DowngradedVideos []int `json:"downgraded_videos,omitempty"`
	ServersDown      []int `json:"servers_down,omitempty"`
	StalledCameras   []int `json:"stalled_cameras,omitempty"`
	// CellRetries[c] counts how many times cell c's proposal bounced before
	// committing (sharded decides only).
	CellRetries []int `json:"cell_retries,omitempty"`
}

// SumBuckets returns the loss buckets summed in the canonical order the
// exactness guarantee is stated over: ((((Shed+Drift)+Fault)+Conflict)+Fallback).
func (l *EpochLedger) SumBuckets() float64 {
	return l.ShedLoss + l.DriftLoss + l.FaultLoss + l.ConflictLoss + l.FallbackLoss
}

// Gap returns Planned − Realized, the quantity the buckets decompose.
func (l *EpochLedger) Gap() float64 { return l.Planned - l.Realized }

// Close makes the decomposition exact: it adjusts DriftLoss (the residual
// bucket) until SumBuckets() equals Gap() bit-for-bit. Floating-point
// addition is not associative, so a single algebraic residual is not
// guaranteed to close the chain; the fixup loop converges in one or two
// steps in practice and is bounded defensively. Non-finite inputs are left
// alone — CheckExact will report them.
func (l *EpochLedger) Close() {
	gap := l.Gap()
	if math.IsNaN(gap) || math.IsInf(gap, 0) {
		return
	}
	for i := 0; i < 64; i++ {
		diff := gap - l.SumBuckets()
		if diff == 0 {
			return
		}
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return
		}
		l.DriftLoss += diff
	}
}

// CheckExact reports whether the canonical bucket sum equals the gap to
// exact float equality — the property Close establishes and golden tests pin.
func (l *EpochLedger) CheckExact() bool { return l.SumBuckets() == l.Gap() }

// RecordLedger stores the ledger and emits it as one JSONL record of kind
// "ledger", attributed to the span carried by ctx (normally the epoch
// span). Safe on a nil receiver.
func (r *Recorder) RecordLedger(ctx context.Context, l EpochLedger) {
	if r == nil {
		return
	}
	// Copy after the guard: taking &l directly would make the parameter
	// escape and heap-allocate at entry, charging disabled telemetry one
	// allocation per call.
	lc := l
	ev := Event{
		T:      time.Since(r.start).Seconds(),
		Kind:   "ledger",
		Name:   "epoch_ledger",
		Ledger: &lc,
	}
	if sp := SpanFromContext(ctx); sp != nil && sp.r == r {
		ev.Trace = sp.trace
		ev.Parent = sp.id
	}
	r.emit(ev)
	r.mu.Lock()
	r.ledgers = append(r.ledgers, l)
	r.mu.Unlock()
}

// Ledgers returns a copy of every ledger recorded so far, in record order.
// Safe on a nil receiver (returns nil).
func (r *Recorder) Ledgers() []EpochLedger {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]EpochLedger(nil), r.ledgers...)
}

// WriteLedgerTable renders per-epoch ledgers as an aligned text table (the
// pamo-trace fault-run summary output).
func WriteLedgerTable(w io.Writer, ledgers []EpochLedger) {
	fmt.Fprintf(w, "%5s %10s %10s %10s %10s %10s %8s %6s %5s\n",
		"epoch", "planned", "realized", "shed", "drift", "fault", "retries", "shedN", "exact")
	for i := range ledgers {
		l := &ledgers[i]
		exact := "ok"
		if !l.CheckExact() {
			exact = "FAIL"
		}
		fmt.Fprintf(w, "%5d %10.5f %10.5f %10.5f %10.5f %10.5f %8d %6d %5s\n",
			l.Epoch, l.Planned, l.Realized, l.ShedLoss, l.DriftLoss, l.FaultLoss,
			l.ConflictRetries, len(l.ShedVideos), exact)
	}
}
