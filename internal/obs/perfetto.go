package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto / chrome://tracing export
//
// WritePerfetto converts a parsed JSONL event stream into the Chrome
// trace-event JSON format (the {"traceEvents": [...]} flavour), loadable
// in Perfetto's UI or chrome://tracing. Spans become complete ("X") events
// with microsecond timestamps; point events and ledgers become instant
// ("i") events.
//
// The trace-event format has no explicit parent links — nesting is implied
// by time containment on one (pid, tid) lane. The exporter therefore
// replays the recorded parent IDs into a lane assignment: a span is placed
// on its parent's lane whenever the parent is still open there and fully
// contains it, so sequential children stack under their parent exactly as
// recorded; concurrent siblings (parallel cells, per-server DES runs)
// spill onto fresh lanes, which is also the honest rendering — they really
// did run concurrently. The assignment is deterministic: spans are
// processed in (start, span-ID) order and lanes probed in a fixed order.

const perfettoPid = 1

// laneEps absorbs the float rounding between a parent's recorded end
// (t + dur, both rounded separately) and its children's: a child may
// appear to outlive its parent by a few ns even though End() ordering
// guarantees it did not.
const laneEps = 1e-9

type perfettoSpan struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args Fields  `json:"args,omitempty"`
}

type perfettoInstant struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s"`
	Args Fields  `json:"args,omitempty"`
}

type perfettoMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// laneState is one (pid, tid) timeline: the stack of spans currently open
// on it, innermost last.
type laneState struct {
	stack []int // indices into the span slice
}

// WritePerfetto writes the event stream as Chrome trace-event JSON.
func WritePerfetto(w io.Writer, events []Event) error {
	type spanRec struct {
		ev         *Event
		start, end float64
		lane       int
	}
	var spans []spanRec
	byID := map[uint64]int{} // span ID -> index into spans
	for i := range events {
		ev := &events[i]
		if ev.Kind != "span" {
			continue
		}
		spans = append(spans, spanRec{ev: ev, start: ev.T, end: ev.T + ev.DurSec, lane: -1})
	}
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := &spans[order[a]], &spans[order[b]]
		if sa.start != sb.start {
			return sa.start < sb.start
		}
		return sa.ev.Span < sb.ev.Span
	})
	for _, i := range order {
		if id := spans[i].ev.Span; id != 0 {
			byID[id] = i
		}
	}

	isAncestor := func(anc, of int) bool {
		// Walk `of`'s parent chain; IDs strictly decrease toward the root,
		// so the walk terminates even on a corrupt stream.
		target := spans[anc].ev.Span
		if target == 0 {
			return false
		}
		cur := spans[of].ev.Parent
		for cur != 0 {
			if cur == target {
				return true
			}
			pi, ok := byID[cur]
			if !ok {
				return false
			}
			next := spans[pi].ev.Parent
			if next >= cur {
				return false
			}
			cur = next
		}
		return false
	}

	var lanes []laneState
	place := func(i int) {
		s := &spans[i]
		// Expire closed spans from every lane top.
		for li := range lanes {
			st := lanes[li].stack
			for len(st) > 0 && spans[st[len(st)-1]].end <= s.start+laneEps {
				st = st[:len(st)-1]
			}
			lanes[li].stack = st
		}
		fits := func(li int) bool {
			st := lanes[li].stack
			if len(st) == 0 {
				return true
			}
			top := st[len(st)-1]
			return isAncestor(top, i) && spans[top].end+laneEps >= s.end
		}
		// Prefer the parent's lane (keeps each causal chain visually
		// stacked), then any existing lane, then a fresh one.
		tried := -1
		if pi, ok := byID[s.ev.Parent]; ok && spans[pi].lane >= 0 {
			if li := spans[pi].lane; fits(li) {
				tried = li
			}
		}
		if tried < 0 {
			for li := range lanes {
				if fits(li) {
					tried = li
					break
				}
			}
		}
		if tried < 0 {
			lanes = append(lanes, laneState{})
			tried = len(lanes) - 1
		}
		lanes[tried].stack = append(lanes[tried].stack, i)
		s.lane = tried
	}
	for _, i := range order {
		place(i)
	}

	// Assemble the traceEvents array: process/lane metadata, then spans in
	// placement order, then instants in stream order — all deterministic.
	var out []json.RawMessage
	add := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out = append(out, b)
		return nil
	}
	if err := add(perfettoMeta{
		Name: "process_name", Ph: "M", Pid: perfettoPid, Tid: 0,
		Args: map[string]string{"name": "pamo"},
	}); err != nil {
		return err
	}
	for li := range lanes {
		if err := add(perfettoMeta{
			Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: li,
			Args: map[string]string{"name": fmt.Sprintf("lane %d", li)},
		}); err != nil {
			return err
		}
	}
	for _, i := range order {
		s := &spans[i]
		if err := add(perfettoSpan{
			Name: s.ev.Name, Ph: "X",
			Ts: s.start * 1e6, Dur: s.ev.DurSec * 1e6,
			Pid: perfettoPid, Tid: s.lane,
			Args: spanArgs(s.ev),
		}); err != nil {
			return err
		}
	}
	for i := range events {
		ev := &events[i]
		if ev.Kind == "span" {
			continue
		}
		tid := 0
		if pi, ok := byID[ev.Parent]; ok && spans[pi].lane >= 0 {
			tid = spans[pi].lane
		}
		if err := add(perfettoInstant{
			Name: ev.Name, Ph: "i", Ts: ev.T * 1e6,
			Pid: perfettoPid, Tid: tid, S: "t",
			Args: spanArgs(ev),
		}); err != nil {
			return err
		}
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, b := range out {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// spanArgs copies the event's fields into the trace event's args, adding
// the causal IDs so Perfetto's detail pane shows the recorded parentage.
func spanArgs(ev *Event) Fields {
	if len(ev.Fields) == 0 && ev.Trace == 0 {
		return nil
	}
	args := make(Fields, len(ev.Fields)+3)
	for k, v := range ev.Fields {
		args[k] = v
	}
	if ev.Trace != 0 {
		args["trace_id"] = float64(ev.Trace)
	}
	if ev.Span != 0 {
		args["span_id"] = float64(ev.Span)
	}
	if ev.Parent != 0 {
		args["parent_id"] = float64(ev.Parent)
	}
	return args
}
