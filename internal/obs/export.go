package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
)

// sanitizeMetricName maps an arbitrary metric name onto the Prometheus
// charset [a-zA-Z0-9_:]; every other rune becomes '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

type namePair struct{ raw, san string }

// sortedNames returns the map's keys with their sanitized forms, ordered
// by the sanitized name the exposition actually prints.
func sortedNames[V any](m map[string]V) []namePair {
	out := make([]namePair, 0, len(m))
	for k := range m {
		out = append(out, namePair{raw: k, san: sanitizeMetricName(k)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].san < out[j].san })
	return out
}

func formatLe(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", bound)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters as <name> counter, gauges as gauge, and
// histograms as cumulative _bucket/_sum/_count series. Names are sorted so
// the output is deterministic. Safe on a nil receiver (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	for _, p := range sortedNames(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p.san, p.san, s.Counters[p.raw]); err != nil {
			return err
		}
	}
	for _, p := range sortedNames(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", p.san, p.san, s.Gauges[p.raw]); err != nil {
			return err
		}
	}
	for _, p := range sortedNames(s.Histograms) {
		n := p.san
		h := s.Histograms[p.raw]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum uint64
		for i, cnt := range h.Counts {
			cum += cnt
			bound := math.Inf(1)
			if i < len(h.Bounds) {
				bound = h.Bounds[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatLe(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
		// Derived quantile gauges: scrapers without recording rules still
		// see tail latency. Skipped while the histogram is empty (the
		// quantile is NaN, which the exposition format cannot carry).
		for _, pq := range [...]struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			v := h.Quantile(pq.q)
			if math.IsNaN(v) {
				continue
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %g\n", n, pq.suffix, n, pq.suffix, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Expvar returns the registry as an expvar.Var whose String() is the JSON
// snapshot, suitable for expvar.Publish. Safe on a nil receiver (the
// snapshot is empty).
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// Handler serves the registry at any path: Prometheus text by default,
// the JSON snapshot with ?format=json. Safe on a nil receiver.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, r.Expvar().String())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Serve exposes the registry over HTTP at /metrics (and /) on addr,
// starting the listener in a background goroutine. It returns the bound
// address, so ":0" callers can discover the port. Serving errors after a
// successful bind are dropped, matching the fire-and-forget role of a
// metrics endpoint in a CLI run. Safe on a nil receiver.
func (r *Registry) Serve(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/", r.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = (&http.Server{Handler: mux}).Serve(ln) }()
	return ln.Addr().String(), nil
}
