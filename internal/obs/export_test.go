package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition of a small registry.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pamo_iterations_total").Add(3)
	reg.Counter("pamo profiles").Add(7) // space must sanitize to '_'
	reg.Gauge("pamo_best_benefit").Set(0.5)
	h := reg.Histogram("span_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE pamo_iterations_total counter
pamo_iterations_total 3
# TYPE pamo_profiles counter
pamo_profiles 7
# TYPE pamo_best_benefit gauge
pamo_best_benefit 0.5
# TYPE span_seconds histogram
span_seconds_bucket{le="0.1"} 2
span_seconds_bucket{le="1"} 3
span_seconds_bucket{le="+Inf"} 4
span_seconds_sum 2.6
span_seconds_count 4
# TYPE span_seconds_p50 gauge
span_seconds_p50 0.1
# TYPE span_seconds_p95 gauge
span_seconds_p95 1
# TYPE span_seconds_p99 gauge
span_seconds_p99 1
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestExpvarSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(2)
	reg.Gauge("g").Set(1.5)
	var snap Snapshot
	if err := json.Unmarshal([]byte(reg.Expvar().String()), &snap); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if snap.Counters["c"] != 2 || snap.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestServeScrape binds an ephemeral port and scrapes both formats.
func TestServeScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scraped_total").Add(9)
	addr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if text := get("/metrics"); !strings.Contains(text, "scraped_total 9") {
		t.Fatalf("text scrape:\n%s", text)
	}
	if js := get("/metrics?format=json"); !strings.Contains(js, `"scraped_total":9`) {
		t.Fatalf("json scrape:\n%s", js)
	}
}
