package obs

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentCounterGaugeHistogram hammers one counter, gauge, and
// histogram from many goroutines; run under -race this is the registry's
// safety check, and the totals verify no update is lost.
func TestConcurrentCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hits")
			g := reg.Gauge("level")
			h := reg.Histogram("lat", DefBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i%100) / 1000) // 0..0.099
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("level").Value(); math.Abs(got-workers*perWorker*0.5) > 1e-9 {
		t.Fatalf("gauge = %v, want %v", got, workers*perWorker*0.5)
	}
	hs := reg.Histogram("lat", nil).Snapshot()
	if hs.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, c := range hs.Counts {
		bucketSum += c
	}
	if bucketSum != hs.Count {
		t.Fatalf("bucket counts sum to %d, count %d", bucketSum, hs.Count)
	}
	// Every observation was < 0.1, so the cumulative count at the 0.1
	// bound must already cover everything.
	var cum uint64
	for i, b := range hs.Bounds {
		cum += hs.Counts[i]
		if b >= 0.1 {
			break
		}
	}
	if cum != hs.Count {
		t.Fatalf("cumulative count at 0.1 = %d, want %d", cum, hs.Count)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5) // bucket 0 (≤1)
	h.Observe(1)   // bucket 0 (≤1, upper edge inclusive)
	h.Observe(1.5) // bucket 1 (≤2)
	h.Observe(3)   // overflow bucket
	s := h.Snapshot()
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 6 || s.Count != 4 {
		t.Fatalf("sum/count = %v/%d", s.Sum, s.Count)
	}
}

// TestNilRegistrySafe checks the whole disabled chain: nil registry →
// nil handles → no-op methods with zero values back.
func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", DefBuckets)
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(0.25)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if reg.Histogram("h", []float64{1}) != reg.Histogram("h", []float64{5, 9}) {
		t.Fatal("same name must return the same histogram (bounds ignored after creation)")
	}
}
