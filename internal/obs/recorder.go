package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one line of the JSONL stream a Recorder emits. T is seconds
// since the recorder started, measured on the monotonic clock; spans carry
// their duration in DurSec. Trace/Span/Parent are the causal-trace IDs
// (see trace.go); they are 0 — and omitted from the JSON — for events
// recorded outside any trace context.
type Event struct {
	T      float64      `json:"t"`
	Kind   string       `json:"kind"` // "span", "event", or "ledger"
	Name   string       `json:"name"`
	DurSec float64      `json:"dur_s,omitempty"`
	Trace  uint64       `json:"trace,omitempty"`
	Span   uint64       `json:"span,omitempty"`
	Parent uint64       `json:"parent,omitempty"`
	Fields Fields       `json:"fields,omitempty"`
	Ledger *EpochLedger `json:"ledger,omitempty"` // kind "ledger" only
}

// Fields is an event's numeric-annotation map. It marshals its keys in
// sorted order, so two runs that record the same values produce
// byte-identical JSONL — plain map marshaling already sorts keys, but the
// named type pins that contract (and golden tests hold it) independent of
// encoding/json internals.
type Fields map[string]float64

// MarshalJSON writes the map with keys in ascending order.
func (f Fields) MarshalJSON() ([]byte, error) {
	if f == nil {
		return []byte("null"), nil
	}
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		v := f[k]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("obs: field %q is %v, not representable in JSON", k, v)
		}
		b.Write(strconv.AppendFloat(nil, v, 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// Field is one numeric annotation on an event or span.
type Field struct {
	Key string
	Val float64
}

// F builds a Field; it keeps call sites short.
func F(key string, val float64) Field { return Field{Key: key, Val: val} }

// Recorder emits a replayable JSONL event stream and aggregates span
// durations as it goes. It also owns a metric Registry so instrumented
// code reaches both surfaces through one handle. All methods are safe for
// concurrent use and no-ops on a nil receiver, so disabled telemetry costs
// a nil check and nothing else.
type Recorder struct {
	mu      sync.Mutex
	w       *bufio.Writer // nil: events are aggregated but not written
	start   time.Time
	reg     *Registry
	spans   map[string]*SpanStat
	durs    map[string]*Histogram // per-name span-duration histograms
	ledgers []EpochLedger
	err     error         // first write error, surfaced by Close
	ids     atomic.Uint64 // trace/span ID allocator (IDs start at 1)
}

// NewRecorder returns a recorder writing JSONL events to w. A nil w keeps
// span aggregation and the registry live without writing anything — useful
// when only the metric/summary surfaces are wanted.
func NewRecorder(w io.Writer) *Recorder {
	r := &Recorder{
		start: time.Now(), reg: NewRegistry(),
		spans: map[string]*SpanStat{}, durs: map[string]*Histogram{},
	}
	if w != nil {
		r.w = bufio.NewWriter(w)
	}
	return r
}

// Registry returns the recorder's metric registry (nil on a nil receiver,
// which in turn yields nil no-op metric handles).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Event emits one instantaneous event with optional numeric fields.
func (r *Recorder) Event(name string, fields ...Field) {
	if r == nil {
		return
	}
	r.emit(Event{
		T:      time.Since(r.start).Seconds(),
		Kind:   "event",
		Name:   name,
		Fields: fieldMap(fields),
	})
}

// Span is an in-flight phase measurement started by StartSpan or
// StartSpanCtx. End emits the span event; Field attaches numeric
// annotations before that. All methods are no-ops on a nil receiver.
type Span struct {
	r      *Recorder
	name   string
	t0     time.Time
	fields []Field
	trace  uint64 // trace ID shared with every span under one root
	id     uint64 // this span's ID, unique within the recorder
	parent uint64 // enclosing span's ID, 0 for roots
}

// StartSpan begins a named span on the monotonic clock. The span is the
// root of a fresh trace; use StartSpanCtx to nest under an existing one.
func (r *Recorder) StartSpan(name string, fields ...Field) *Span {
	if r == nil {
		return nil
	}
	sp := &Span{r: r, name: name, t0: time.Now(), id: r.ids.Add(1), trace: r.ids.Add(1)}
	sp.fields = append(sp.fields, fields...)
	return sp
}

// Field attaches one numeric annotation to the span.
func (sp *Span) Field(key string, val float64) {
	if sp == nil {
		return
	}
	sp.fields = append(sp.fields, Field{Key: key, Val: val})
}

// End emits the span event, folds its duration into the recorder's
// per-name aggregation, and returns the duration in seconds (0 on a nil
// receiver) so callers can feed it into histograms without re-timing.
func (sp *Span) End() float64 {
	if sp == nil {
		return 0
	}
	dur := time.Since(sp.t0).Seconds()
	r := sp.r
	r.emit(Event{
		T:      sp.t0.Sub(r.start).Seconds(),
		Kind:   "span",
		Name:   sp.name,
		DurSec: dur,
		Trace:  sp.trace,
		Span:   sp.id,
		Parent: sp.parent,
		Fields: fieldMap(sp.fields),
	})
	r.mu.Lock()
	st, ok := r.spans[sp.name]
	if !ok {
		st = &SpanStat{Name: sp.name, Min: math.Inf(1)}
		r.spans[sp.name] = st
	}
	st.observe(dur)
	h, ok := r.durs[sp.name]
	if !ok {
		h = newHistogram(DefBuckets)
		r.durs[sp.name] = h
	}
	r.mu.Unlock()
	h.Observe(dur)
	return dur
}

// SpanHistogram returns the duration histogram of all completed spans of
// one name (an empty snapshot when the name never completed, or on a nil
// receiver). Quantiles derive from it via HistogramSnapshot.Quantile.
func (r *Recorder) SpanHistogram(name string) HistogramSnapshot {
	if r == nil {
		return HistogramSnapshot{}
	}
	r.mu.Lock()
	h := r.durs[name]
	r.mu.Unlock()
	return h.Snapshot()
}

func fieldMap(fields []Field) Fields {
	if len(fields) == 0 {
		return nil
	}
	m := make(Fields, len(fields))
	for _, f := range fields {
		m[f.Key] = f.Val
	}
	return m
}

func (r *Recorder) emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err == nil {
		b = append(b, '\n')
		_, err = r.w.Write(b)
	}
	if err != nil && r.err == nil {
		r.err = err
	}
}

// Close flushes the JSONL sink and returns the first write error, if any.
// It does not close the underlying writer. Safe on a nil receiver.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// SpanStat aggregates every completed span of one name.
type SpanStat struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Total float64 `json:"total_s"`
	Min   float64 `json:"min_s"`
	Max   float64 `json:"max_s"`
}

func (st *SpanStat) observe(dur float64) {
	st.Count++
	st.Total += dur
	st.Min = math.Min(st.Min, dur)
	st.Max = math.Max(st.Max, dur)
}

// Mean returns the mean span duration.
func (st SpanStat) Mean() float64 {
	if st.Count == 0 {
		return 0
	}
	return st.Total / float64(st.Count)
}

// SpanSummary returns the per-name span aggregation, sorted by descending
// total time. Safe on a nil receiver (returns nil).
func (r *Recorder) SpanSummary() []SpanStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanStat, 0, len(r.spans))
	for _, st := range r.spans {
		out = append(out, *st)
	}
	r.mu.Unlock()
	sortSpanStats(out)
	return out
}

func sortSpanStats(stats []SpanStat) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Total != stats[j].Total {
			return stats[i].Total > stats[j].Total
		}
		return stats[i].Name < stats[j].Name
	})
}

// ReadEvents parses a JSONL event stream back into events. Blank lines are
// skipped; a malformed line is an error carrying its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SummarizeSpans aggregates the span events of a parsed stream into
// per-name statistics, sorted by descending total time.
func SummarizeSpans(events []Event) []SpanStat {
	agg := map[string]*SpanStat{}
	for _, ev := range events {
		if ev.Kind != "span" {
			continue
		}
		st, ok := agg[ev.Name]
		if !ok {
			st = &SpanStat{Name: ev.Name, Min: math.Inf(1)}
			agg[ev.Name] = st
		}
		st.observe(ev.DurSec)
	}
	out := make([]SpanStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sortSpanStats(out)
	return out
}

// WriteSpanTable renders span statistics as an aligned text table (the
// pamo-trace -events-summary output).
func WriteSpanTable(w io.Writer, stats []SpanStat) {
	fmt.Fprintf(w, "%-24s %7s %12s %12s %12s %12s\n",
		"span", "count", "total_s", "mean_s", "min_s", "max_s")
	for _, st := range stats {
		fmt.Fprintf(w, "%-24s %7d %12.4f %12.4f %12.4f %12.4f\n",
			st.Name, st.Count, st.Total, st.Mean(), st.Min, st.Max)
	}
}
