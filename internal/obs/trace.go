package obs

import (
	"context"
	"runtime/pprof"
	"time"
)

// Causal tracing
//
// A span carries three IDs: Trace (shared by every span reachable from one
// root), Span (unique per span within a recorder), and Parent (the Span ID
// of the enclosing span, 0 for roots). IDs are allocated from one atomic
// counter per Recorder, so they are unique, nonzero, and — because a child
// is always started after its parent — strictly greater than their parent's
// ID. That ordering makes parent links trivially acyclic and lets exporters
// sort spans causally without a graph walk.
//
// Propagation is by context.Context: StartSpanCtx reads the innermost span
// out of ctx, links the new span under it, and returns a derived context
// carrying the new span. Code that only emits point events calls EventCtx
// and inherits the trace/parent of whatever span is in ctx. A nil Recorder
// keeps the whole surface free: StartSpanCtx returns (ctx, nil) without
// deriving a context, so the disabled path stays a nil check and zero
// allocations.

// spanCtxKey keys the innermost *Span in a context.
type spanCtxKey struct{}

// SpanFromContext returns the innermost span stored in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ContextWithSpan returns a context carrying sp. A nil span returns ctx
// unchanged (no allocation), so disabled-telemetry call chains can thread
// the pair returned by StartSpanCtx without cost.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// StartSpanCtx begins a named span as a child of the span carried by ctx
// (a root span of a fresh trace when ctx carries none) and returns a
// derived context carrying the new span plus the span itself. On a nil
// receiver it returns (ctx, nil) untouched — the zero-cost disabled path.
func (r *Recorder) StartSpanCtx(ctx context.Context, name string, fields ...Field) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	sp := &Span{r: r, name: name, t0: time.Now(), id: r.ids.Add(1)}
	if parent := SpanFromContext(ctx); parent != nil && parent.r == r {
		sp.trace = parent.trace
		sp.parent = parent.id
	} else {
		sp.trace = r.ids.Add(1)
	}
	sp.fields = append(sp.fields, fields...)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// EventCtx emits one instantaneous event attributed to the span carried by
// ctx: the event inherits the span's trace ID and records the span as its
// parent, so exporters can place it on the right timeline lane.
func (r *Recorder) EventCtx(ctx context.Context, name string, fields ...Field) {
	if r == nil {
		return
	}
	ev := Event{
		T:      time.Since(r.start).Seconds(),
		Kind:   "event",
		Name:   name,
		Fields: fieldMap(fields),
	}
	if sp := SpanFromContext(ctx); sp != nil && sp.r == r {
		ev.Trace = sp.trace
		ev.Parent = sp.id
	}
	r.emit(ev)
}

// Do runs fn with the goroutine labeled phase=<phase> for the CPU profiler
// (runtime/pprof label propagation), so profiles collected during a traced
// run segment by the same phases the span tree records. On a nil receiver
// it calls fn(ctx) directly — no labels, no allocation.
func (r *Recorder) Do(ctx context.Context, phase string, fn func(context.Context)) {
	if r == nil {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels("phase", phase), fn)
}

// TraceID returns the span's trace ID (0 on a nil receiver).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.trace
}

// ID returns the span's own ID (0 on a nil receiver).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// ParentID returns the enclosing span's ID (0 for roots and nil receivers).
func (sp *Span) ParentID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.parent
}
