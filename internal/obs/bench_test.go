package obs

import (
	"io"
	"testing"
)

// BenchmarkDisabledRecorder measures the nil-receiver path — the price
// instrumented hot paths pay when telemetry is off. The contract is zero
// allocations and a few nanoseconds.
func BenchmarkDisabledRecorder(b *testing.B) {
	var rec *Recorder
	reg := rec.Registry()
	c := reg.Counter("c")
	h := reg.Histogram("h", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.StartSpan("phase", F("k", 1))
		sp.End()
		rec.Event("ev", F("a", float64(i)))
		c.Inc()
		h.Observe(0.01)
	}
}

// BenchmarkEnabledRecorder is the reference cost with a live sink.
func BenchmarkEnabledRecorder(b *testing.B) {
	rec := NewRecorder(io.Discard)
	c := rec.Registry().Counter("c")
	h := rec.Registry().Histogram("h", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.StartSpan("phase", F("k", 1))
		sp.End()
		rec.Event("ev", F("a", float64(i)))
		c.Inc()
		h.Observe(0.01)
	}
}

// BenchmarkCounterHot isolates the per-op cost of one live counter
// increment (the cheapest thing left in a hot loop with telemetry on).
func BenchmarkCounterHot(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
