//go:build !race

// Alloc guards live behind !race: the race runtime instruments allocations
// and makes AllocsPerRun numbers meaningless.

package obs

import (
	"context"
	"io"
	"testing"
)

// phaseNoop is a static func so Do's argument itself costs nothing; the
// closures real call sites pass are the caller's allocation, not the
// recorder's.
func phaseNoop(context.Context) {}

// TestTraceDisabledPathAllocatesZero pins the zero-cost contract of the
// context-propagating trace surface — the shape of the controller's hot
// decide path (attempt span, pprof label, nested spans, point events,
// ledger) must allocate nothing when telemetry is off.
func TestTraceDisabledPathAllocatesZero(t *testing.T) {
	var rec *Recorder
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		actx, asp := rec.StartSpanCtx(ctx, "decide_attempt", F("epoch", 1), F("try", 0))
		rec.Do(actx, "decide", phaseNoop)
		cctx, csp := rec.StartSpanCtx(actx, "decide_cell", F("cell", 0))
		rec.EventCtx(cctx, "shard_commit", F("cell", 0), F("retries", 0))
		csp.Field("failed", 0)
		csp.End()
		rec.RecordLedger(actx, EpochLedger{})
		asp.Field("benefit", 1)
		asp.End()
		if SpanFromContext(actx) != nil {
			t.Fatal("nil recorder put a span in ctx")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %v per op, want 0", allocs)
	}
}

// TestTraceEnabledPathAllocBudget bounds the live path so instrumentation
// creep shows up in review: one nested attempt/cell pair with an event and
// JSONL emission must stay within budget.
func TestTraceEnabledPathAllocBudget(t *testing.T) {
	rec := NewRecorder(io.Discard)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		actx, asp := rec.StartSpanCtx(ctx, "decide_attempt", F("epoch", 1), F("try", 0))
		cctx, csp := rec.StartSpanCtx(actx, "decide_cell", F("cell", 0))
		rec.EventCtx(cctx, "shard_commit", F("cell", 0), F("retries", 0))
		csp.End()
		asp.End()
	})
	// Measured ~45 on go1.2x (span structs, context values, field maps,
	// JSON encoding); the budget leaves headroom without hiding a leak of
	// a whole extra emission path.
	const budget = 80
	if allocs > budget {
		t.Fatalf("enabled trace path allocates %v per op, budget %d", allocs, budget)
	}
}
