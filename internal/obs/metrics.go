// Package obs is the repo's dependency-free telemetry layer: a race-safe
// metric registry (atomic counters, gauges, fixed-bucket histograms), a
// phase/span recorder with a JSONL event sink, and export surfaces
// (expvar snapshot, Prometheus text exposition, net/http handler).
//
// Every type is a no-op on its nil receiver, so instrumented code can keep
// the calls unconditionally in hot paths and pay nothing when telemetry is
// disabled: a nil *Recorder yields a nil *Registry, which yields nil metric
// handles, all of whose methods return immediately without allocating.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value. The zero value is ready to
// use; all methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge (atomic compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets is a generic log-spaced bucket ladder that covers both
// sub-millisecond span durations and minute-scale phases. Bounds are upper
// bucket edges in the observed unit (seconds for durations).
var DefBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// UnitBuckets suits quantities bounded in [0, 1] such as utilizations.
var UnitBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations are cheap enough for hot paths: one binary search plus two
// atomic adds. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bucket edges; +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"` // upper edges; the +Inf bucket is Counts[len(Bounds)]
	Counts []uint64  `json:"counts"` // len(Bounds)+1 bucket counts
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot returns a consistent-enough copy for export (individual fields
// are atomic; cross-field skew is bounded by in-flight Observe calls).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket that holds the
// target rank — Prometheus histogram_quantile semantics: the first
// bucket's lower edge is 0, and a rank landing in the +Inf bucket reports
// the largest finite bound (the histogram cannot resolve further). Returns
// NaN for an empty histogram or a q outside [0, 1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, cnt := range s.Counts {
		if cnt == 0 {
			cum += cnt
			continue
		}
		prev := cum
		cum += cnt
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: report the largest finite bound, if any.
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(cnt)
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	// Unreachable when Count is consistent with Counts; be safe under skew.
	return math.NaN()
}

// Registry holds named metrics. Lookup methods get-or-create and are safe
// for concurrent use; hot paths should look a handle up once and keep it,
// since each lookup takes the registry lock. All methods are no-ops (and
// return nil handles) on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON/expvar export.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Safe on a nil receiver
// (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
