package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// TestLedgerCloseExact: Close must make SumBuckets equal Gap bit-for-bit,
// including on adversarial magnitudes where one algebraic residual is not
// enough under non-associative float addition.
func TestLedgerCloseExact(t *testing.T) {
	cases := []EpochLedger{
		{Planned: 1, Realized: 0.25, ShedLoss: 0.5, DriftLoss: 0.1, FaultLoss: 0.2},
		{Planned: 0.8366401241, Realized: 0.8366401241},
		{Planned: 1e17, Realized: 3, ShedLoss: 1, DriftLoss: 0.1, FaultLoss: 7},
		{Planned: 1, Realized: 1 + 1e-16, DriftLoss: -1e-16},
		{Planned: -0.5, Realized: 0.25, ShedLoss: 0.125},
	}
	for i, l := range cases {
		l.Close()
		if !l.CheckExact() {
			t.Fatalf("case %d not exact: sum=%v gap=%v", i, l.SumBuckets(), l.Gap())
		}
	}
}

// TestLedgerCloseNonFinite: NaN/Inf gaps are left alone and reported by
// CheckExact instead of looping or poisoning the buckets.
func TestLedgerCloseNonFinite(t *testing.T) {
	l := EpochLedger{Planned: math.NaN(), Realized: 1}
	l.Close()
	if l.CheckExact() {
		t.Fatal("NaN ledger claims exactness")
	}
	if l.DriftLoss != 0 {
		t.Fatalf("NaN gap perturbed DriftLoss: %v", l.DriftLoss)
	}
	l = EpochLedger{Planned: math.Inf(1), Realized: 1}
	l.Close()
	if l.DriftLoss != 0 {
		t.Fatalf("Inf gap perturbed DriftLoss: %v", l.DriftLoss)
	}
}

// TestRecordLedgerRoundTrip: the ledger survives the JSONL stream intact,
// is attributed to the span in ctx, and accumulates on the recorder.
func TestRecordLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	ctx, sp := rec.StartSpanCtx(context.Background(), "epoch")
	led := EpochLedger{
		Epoch: 3, Planned: 0.9, Realized: 0.7,
		ShedLoss: 0.15, FaultLoss: 0.05,
		ConflictRetries: 2, FellBack: true,
		ShedVideos: []int{4, 7}, ServersDown: []int{1},
		CellRetries: []int{0, 2},
	}
	led.Close()
	rec.RecordLedger(ctx, led)
	sp.End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got *Event
	for i := range evs {
		if evs[i].Kind == "ledger" {
			got = &evs[i]
		}
	}
	if got == nil {
		t.Fatal("no ledger event in stream")
	}
	if got.Name != "epoch_ledger" || got.Parent != sp.ID() || got.Trace != sp.TraceID() {
		t.Fatalf("ledger attribution wrong: %+v", got)
	}
	l := got.Ledger
	if l == nil || l.Epoch != 3 || l.Planned != 0.9 || !l.FellBack ||
		len(l.ShedVideos) != 2 || len(l.CellRetries) != 2 {
		t.Fatalf("ledger payload mangled: %+v", l)
	}
	if !l.CheckExact() {
		t.Fatalf("round-tripped ledger inexact: sum=%v gap=%v", l.SumBuckets(), l.Gap())
	}
	leds := rec.Ledgers()
	if len(leds) != 1 || leds[0].Epoch != 3 {
		t.Fatalf("Ledgers() = %+v", leds)
	}
}

// TestRecordLedgerNilRecorder: the disabled path is inert.
func TestRecordLedgerNilRecorder(t *testing.T) {
	var rec *Recorder
	rec.RecordLedger(context.Background(), EpochLedger{Epoch: 1})
	if rec.Ledgers() != nil {
		t.Fatal("nil recorder returned ledgers")
	}
}

// TestWriteLedgerTable: the table renders one row per epoch and flags an
// inexact ledger.
func TestWriteLedgerTable(t *testing.T) {
	good := EpochLedger{Epoch: 0, Planned: 1, Realized: 0.75, ShedLoss: 0.25}
	good.Close()
	bad := EpochLedger{Epoch: 1, Planned: 1, Realized: 0.5, ShedLoss: 0.1}
	var sb strings.Builder
	WriteLedgerTable(&sb, []EpochLedger{good, bad})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "ok") {
		t.Fatalf("exact row not marked ok: %s", lines[1])
	}
	if !strings.Contains(lines[2], "FAIL") {
		t.Fatalf("inexact row not flagged: %s", lines[2])
	}
}
