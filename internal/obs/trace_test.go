package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"runtime/pprof"
	"strings"
	"testing"
)

// TestSpanContextParentage pins the causal-ID contract: children inherit
// the root's trace ID, parent links point at the enclosing span, and IDs
// strictly increase from parent to child (which makes the links acyclic).
func TestSpanContextParentage(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)

	ctx, root := rec.StartSpanCtx(context.Background(), "root")
	cctx, child := rec.StartSpanCtx(ctx, "child")
	_, grand := rec.StartSpanCtx(cctx, "grandchild")
	rec.EventCtx(cctx, "note", F("k", 1))
	grand.End()
	child.End()
	root.End()

	if root.ParentID() != 0 {
		t.Fatalf("root has parent %d", root.ParentID())
	}
	if child.ParentID() != root.ID() || grand.ParentID() != child.ID() {
		t.Fatalf("parent links wrong: root=%d child=%d/%d grand=%d/%d",
			root.ID(), child.ID(), child.ParentID(), grand.ID(), grand.ParentID())
	}
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatalf("trace ids diverge: %d %d %d", root.TraceID(), child.TraceID(), grand.TraceID())
	}
	if !(root.ID() < child.ID() && child.ID() < grand.ID()) {
		t.Fatalf("ids not increasing: %d %d %d", root.ID(), child.ID(), grand.ID())
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The "note" event must be attributed to the child span.
	var note *Event
	for i := range evs {
		if evs[i].Name == "note" {
			note = &evs[i]
		}
	}
	if note == nil || note.Parent != child.ID() || note.Trace != root.TraceID() {
		t.Fatalf("note attribution wrong: %+v (child=%d trace=%d)", note, child.ID(), root.TraceID())
	}
}

// TestSpanContextForeignRecorder: a span from another recorder in ctx must
// not become the parent — each recorder allocates from its own ID space.
func TestSpanContextForeignRecorder(t *testing.T) {
	recA := NewRecorder(nil)
	recB := NewRecorder(nil)
	ctx, spA := recA.StartSpanCtx(context.Background(), "a")
	_, spB := recB.StartSpanCtx(ctx, "b")
	if spB.ParentID() != 0 {
		t.Fatalf("cross-recorder parent leaked: %d", spB.ParentID())
	}
	spB.End()
	spA.End()
}

// TestNilRecorderTraceSurface: every trace entry point must be free and
// inert when telemetry is disabled.
func TestNilRecorderTraceSurface(t *testing.T) {
	var rec *Recorder
	ctx := context.Background()
	octx, sp := rec.StartSpanCtx(ctx, "x", F("a", 1))
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	if octx != ctx {
		t.Fatal("nil recorder derived a context")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("ContextWithSpan(nil span) derived a context")
	}
	if SpanFromContext(nil) != nil || SpanFromContext(ctx) != nil {
		t.Fatal("SpanFromContext invented a span")
	}
	rec.EventCtx(ctx, "e")
	ran := false
	rec.Do(ctx, "phase", func(got context.Context) {
		ran = true
		if got != ctx {
			t.Fatal("nil recorder Do changed the context")
		}
	})
	if !ran {
		t.Fatal("nil recorder Do skipped fn")
	}
	if sp.TraceID() != 0 || sp.ID() != 0 || sp.ParentID() != 0 {
		t.Fatal("nil span ids nonzero")
	}
}

// TestDoAppliesPprofLabel: inside Recorder.Do the goroutine must carry the
// phase label so CPU profiles segment by the same names as the span tree.
func TestDoAppliesPprofLabel(t *testing.T) {
	rec := NewRecorder(nil)
	var got string
	var ok bool
	rec.Do(context.Background(), "solution", func(ctx context.Context) {
		got, ok = pprof.Label(ctx, "phase")
	})
	if !ok || got != "solution" {
		t.Fatalf("phase label = %q, %v", got, ok)
	}
}

// TestFieldsSortedGolden pins byte-exact JSONL for out-of-order field
// insertion: keys marshal sorted, floats in shortest 'g' form.
func TestFieldsSortedGolden(t *testing.T) {
	f := Fields{"zeta": 2, "alpha": 0.5, "mid": 3}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":0.5,"mid":3,"zeta":2}`
	if string(b) != want {
		t.Fatalf("got %s want %s", b, want)
	}
}

// TestFieldsRejectNonFinite: NaN/Inf fields must fail marshaling loudly
// instead of emitting invalid JSON.
func TestFieldsRejectNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := json.Marshal(Fields{"bad": v}); err == nil {
			t.Fatalf("field %v marshaled without error", v)
		}
	}
}

// TestSpanJSONOmitsZeroIDs: events recorded outside a trace keep their old
// shape — no trace/span/parent keys — so pre-trace JSONL consumers and
// goldens are unaffected.
func TestSpanJSONOmitsZeroIDs(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Event("plain", F("x", 1))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, key := range []string{`"trace"`, `"span"`, `"parent"`, `"ledger"`} {
		if strings.Contains(line, key) {
			t.Fatalf("untraced event leaked %s: %s", key, line)
		}
	}
}

// TestSpanHistogramQuantiles: Span.End feeds the per-name duration
// histogram behind SpanHistogram; an unknown name yields an empty snapshot
// whose quantiles are NaN.
func TestSpanHistogramQuantiles(t *testing.T) {
	rec := NewRecorder(nil)
	for i := 0; i < 3; i++ {
		rec.StartSpan("work").End()
	}
	h := rec.SpanHistogram("work")
	if h.Count != 3 {
		t.Fatalf("count %d, want 3", h.Count)
	}
	if q := h.Quantile(0.5); math.IsNaN(q) || q < 0 {
		t.Fatalf("p50 = %v", q)
	}
	if q := rec.SpanHistogram("missing").Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("missing-span quantile = %v, want NaN", q)
	}
}

// TestQuantileInterpolation checks the Prometheus histogram_quantile
// semantics on a hand-built histogram: rank q·Count with linear
// interpolation inside the bucket, first bucket anchored at 0, +Inf bucket
// clamped to the largest finite bound.
func TestQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q, want float64
	}{
		{0.2, 1},    // rank 1 → first bucket [0,1], full fraction
		{0.5, 1.75}, // rank 2.5 → bucket (1,2], 1.5 of count 2 → 1+0.75
		{0.8, 4},    // rank 4 → bucket (2,4], fraction 1
		{0.99, 4},   // rank 4.95 → +Inf bucket → clamp to 4
		{1.0, 4},    // clamp
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := s.Quantile(0.5); got != 1.75 {
		t.Fatalf("p50 = %v, want 1.75 exactly", got)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := s.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %v, want NaN", got)
	}
}
