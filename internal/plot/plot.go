// Package plot renders simple line charts as standalone SVG documents
// using only the standard library. It exists so the reproduction can emit
// the paper's evaluation figures as actual figures, not just tables.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a single-axes line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // pixels; default 640
	Height int // pixels; default 400
}

// palette holds distinguishable line colors (cycled).
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const margin = 56.0

// SVG writes the chart as a complete SVG document.
func (c *Chart) SVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	xLo, xHi, yLo, yHi, ok := c.bounds()
	if !ok {
		return fmt.Errorf("plot: no finite data in chart %q", c.Title)
	}
	// Pad the y-range slightly so lines don't hug the frame.
	if yHi == yLo {
		yHi = yLo + 1
	}
	pad := (yHi - yLo) * 0.07
	yLo -= pad
	yHi += pad
	if xHi == xLo {
		xHi = xLo + 1
	}

	plotW := float64(width) - 2*margin
	plotH := float64(height) - 2*margin
	px := func(x float64) float64 { return margin + (x-xLo)/(xHi-xLo)*plotW }
	py := func(y float64) float64 { return margin + plotH - (y-yLo)/(yHi-yLo)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n", width/2, esc(c.Title))

	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n", margin, margin, plotW, plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xLo + (xHi-xLo)*float64(i)/4
		fy := yLo + (yHi-yLo)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999" stroke-dasharray="3,4"/>`+"\n",
			px(fx), margin, px(fx), margin+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(fx), margin+plotH+16, fmtTick(fx))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999" stroke-dasharray="3,4"/>`+"\n",
			margin, py(fy), margin+plotW, py(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			margin-6, py(fy)+4, fmtTick(fy))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		width/2, height-10, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		height/2, height/2, esc(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for _, p := range pts {
			var x, y float64
			fmt.Sscanf(p, "%f,%f", &x, &y)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
		}
		// Legend entry.
		ly := margin + 8 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			margin+plotW-110, ly, margin+plotW-90, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			margin+plotW-84, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) bounds() (xLo, xHi, yLo, yHi float64, ok bool) {
	xLo, yLo = math.Inf(1), math.Inf(1)
	xHi, yHi = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if !finite(s.X[i]) || i >= len(s.Y) || !finite(s.Y[i]) {
				continue
			}
			xLo = math.Min(xLo, s.X[i])
			xHi = math.Max(xHi, s.X[i])
			yLo = math.Min(yLo, s.Y[i])
			yHi = math.Max(yHi, s.Y[i])
			ok = true
		}
	}
	return xLo, xHi, yLo, yHi, ok
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
