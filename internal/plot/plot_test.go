package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func chart() *Chart {
	return &Chart{
		Title:  "demo <chart>",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 4, 9}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 3, 5}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().SVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Must parse as XML end to end.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "demo &lt;chart&gt;", "circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 && !strings.Contains(out, "legend") {
		// two data polylines plus legend lines drawn as <line>
		t.Fatalf("series missing: %d polylines", strings.Count(out, "<polyline"))
	}
}

func TestSVGEmptyChartErrors(t *testing.T) {
	c := &Chart{Title: "empty"}
	if err := c.SVG(&bytes.Buffer{}); err == nil {
		t.Fatal("empty chart accepted")
	}
	c.Series = []Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}
	if err := c.SVG(&bytes.Buffer{}); err == nil {
		t.Fatal("all-NaN chart accepted")
	}
}

func TestSVGSinglePointAndConstantSeries(t *testing.T) {
	c := &Chart{
		Title:  "degenerate",
		Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}},
	}
	var buf bytes.Buffer
	if err := c.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "circle") {
		t.Fatal("point not drawn")
	}
}

func TestSVGSkipsNaNPoints(t *testing.T) {
	c := &Chart{
		Title: "gaps",
		Series: []Series{{
			Name: "g",
			X:    []float64{0, 1, 2, 3},
			Y:    []float64{1, math.NaN(), 3, 4},
		}},
	}
	var buf bytes.Buffer
	if err := c.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	// 3 finite points drawn.
	if got := strings.Count(buf.String(), "<circle"); got != 3 {
		t.Fatalf("circles = %d", got)
	}
}

func TestSVGCustomSize(t *testing.T) {
	c := chart()
	c.Width, c.Height = 300, 200
	var buf bytes.Buffer
	if err := c.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="300"`) {
		t.Fatal("custom width ignored")
	}
}
