// Package repro is the public API of this reproduction of "The Blind and
// the Elephant: A Preference-aware Edge Video Analytics Scheduler for
// Maximizing System Benefit" (PaMO, ICPP 2024).
//
// It re-exports the pieces a downstream user composes:
//
//   - a simulated EVA System (video clips + edge servers),
//   - the PaMO scheduler (Algorithm 2: GP outcome models, comparison-based
//     preference learning, qNEI Bayesian optimization, zero-jitter
//     scheduling) and its PaMO+ variant,
//   - the JCAB and FACT baseline schedulers,
//   - the ground-truth evaluator (analytic outcomes + discrete-event
//     latency) and the Eq. 13 benefit machinery.
//
// See examples/ for runnable end-to-end programs and cmd/pamo-bench for
// the paper's figures.
package repro

import (
	"context"
	"math/rand/v2"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/exp"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/pricing"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/videosim"
)

// Core system types.
type (
	// System is an edge video analytics system: video sources and servers.
	System = objective.System
	// Server is one edge server (uplink bandwidth in bits/s).
	Server = cluster.Server
	// Clip is one simulated video source.
	Clip = videosim.Clip
	// Config is a per-stream (resolution, fps) knob pair.
	Config = videosim.Config
	// Outcome is a five-objective outcome vector
	// (latency, accuracy, network, compute, energy).
	Outcome = objective.Vector
	// Preference is the hidden system pricing preference of Eq. 13.
	Preference = objective.Preference
	// Normalizer min-max normalizes outcomes into [0,1]^5.
	Normalizer = objective.Normalizer
	// Decision is a complete scheduling decision.
	Decision = eva.Decision
	// Stream is a periodic stream as Algorithm 1 schedules it.
	Stream = sched.Stream
	// Plan is the output of the zero-jitter scheduling Algorithm 1.
	Plan = sched.Plan
	// DecisionMaker answers pairwise outcome comparisons.
	DecisionMaker = pref.DecisionMaker
	// Oracle is a DecisionMaker backed by a hidden true preference.
	Oracle = pref.Oracle
	// PaMOOptions tunes the PaMO scheduler.
	PaMOOptions = pamo.Options
	// PaMOResult is the output of a PaMO run.
	PaMOResult = pamo.Result
	// JCABOptions tunes the JCAB baseline.
	JCABOptions = baselines.JCABOptions
	// FACTOptions tunes the FACT baseline.
	FACTOptions = baselines.FACTOptions
)

// Objective indices of an Outcome vector.
const (
	Latency  = objective.Latency
	Accuracy = objective.Accuracy
	Network  = objective.Network
	Compute  = objective.Compute
	Energy   = objective.Energy
)

// ObjectiveNames are the short names of the five objectives, in order.
var ObjectiveNames = objective.Names

// Standard knob grids (the paper's configuration space).
var (
	Resolutions = videosim.Resolutions
	FrameRates  = videosim.FrameRates
)

// NewSystem builds a reproducible simulated system with m MOT16-like video
// sources and n edge servers whose uplinks are drawn from the paper's
// {5..30} Mbps set.
func NewSystem(m, n int, seed uint64) *System { return exp.NewSystem(m, n, seed) }

// NewSystemWithUplinks builds a system with explicit server uplinks (bits/s).
func NewSystemWithUplinks(m int, uplinks []float64, seed uint64) *System {
	servers := make([]Server, len(uplinks))
	for j, u := range uplinks {
		servers[j] = Server{Name: "edge", Uplink: u}
	}
	return &System{Clips: videosim.StandardClips(m, seed), Servers: servers}
}

// NewRNG returns a seeded random source for DecisionMaker noise etc.
func NewRNG(seed uint64) *rand.Rand { return stats.NewRNG(seed) }

// UniformPreference returns Eq. 13 weights of 1 for every objective.
func UniformPreference() Preference { return objective.UniformPreference() }

// NewNormalizer builds the system's min-max outcome normalizer.
func NewNormalizer(sys *System) Normalizer { return objective.NewNormalizer(sys) }

// NormalizeBenefit maps a raw benefit onto the paper's normalized scale
// (1.0 = the PaMO+ reference value maxU).
func NormalizeBenefit(u, maxU float64, p Preference) float64 {
	return objective.NormalizeBenefit(u, maxU, p)
}

// PaMOScheduler is a constructed (but not yet run) PaMO instance; use it
// when you need post-run access to the scheduler, e.g. Diagnostics().
type PaMOScheduler = pamo.Scheduler

// NewPaMO builds a PaMO scheduler without running it.
func NewPaMO(sys *System, dm DecisionMaker, opt PaMOOptions) *PaMOScheduler {
	opt.UseEUBO = true
	return pamo.New(sys, dm, opt)
}

// RunPaMO runs the full PaMO scheduler (Algorithm 2) with a learned
// preference model; dm answers the pairwise comparisons.
func RunPaMO(sys *System, dm DecisionMaker, opt PaMOOptions) (*PaMOResult, error) {
	return NewPaMO(sys, dm, opt).Run()
}

// RunPaMOPlus runs the PaMO+ variant, which scores candidates with the
// true preference function instead of a learned model.
func RunPaMOPlus(sys *System, truth Preference, opt PaMOOptions) (*PaMOResult, error) {
	opt.UseTruePref = true
	opt.TruePref = truth
	return pamo.New(sys, nil, opt).Run()
}

// RunJCAB runs the JCAB baseline (Lyapunov optimization + First-Fit).
func RunJCAB(sys *System, opt JCABOptions) (Decision, error) {
	return baselines.JCAB(context.Background(), sys, opt)
}

// RunFACT runs the FACT baseline (block coordinate descent).
func RunFACT(sys *System, opt FACTOptions) (Decision, error) {
	return baselines.FACT(context.Background(), sys, opt)
}

// Evaluate scores a decision on the ground-truth system: analytic
// Eqs. (2)–(4) plus discrete-event-simulated latency.
func Evaluate(sys *System, d Decision) Outcome { return eva.Evaluate(sys, d) }

// MaxJitter reports the worst simulated per-stream delay jitter of a
// decision (zero for Algorithm 1 plans, per Theorem 1).
func MaxJitter(sys *System, d Decision) float64 { return eva.MaxJitter(sys, d) }

// BuildStreams converts per-video configurations into post-split periodic
// streams using the system's ground-truth curves.
func BuildStreams(sys *System, cfgs []Config) []Stream { return eva.BuildStreams(sys, cfgs) }

// ScheduleZeroJitter runs Algorithm 1 directly: group the streams under
// the zero-jitter constraint (Const2) and map groups to servers with the
// Hungarian algorithm.
func ScheduleZeroJitter(streams []Stream, servers []Server) (Plan, error) {
	return sched.Schedule(streams, servers)
}

// NewOracle builds a decision maker that answers comparisons from a hidden
// true preference, with optional response noise.
func NewOracle(truth Preference, noise float64, seed uint64) *Oracle {
	return &Oracle{Pref: truth, Noise: noise, Rng: stats.NewRNG(seed)}
}

// Online control plane, trace replay, pricing rules, and heterogeneous
// virtualization (see the internal packages for full APIs).
type (
	// Controller drives the online replanning loop over virtual epochs.
	Controller = runtime.Controller
	// ControllerOptions tunes replanning cadence and evaluation workers.
	ControllerOptions = runtime.Options
	// RuntimeScheduler produces decisions for the controller.
	RuntimeScheduler = runtime.Scheduler
	// RuntimeTrace is the controller's epoch-by-epoch history.
	RuntimeTrace = runtime.Trace
	// WorkloadTrace is a recorded profiling trace (JSON serializable).
	WorkloadTrace = trace.Trace
	// Billing composes tariffs and an SLA into a non-linear benefit.
	Billing = pricing.Billing
	// PhysicalServer is a heterogeneous machine prior to virtualization.
	PhysicalServer = cluster.PhysicalServer
)

// RecordTrace profiles the whole configuration grid of a system and
// returns a replayable workload trace.
func RecordTrace(sys *System, noiseStd float64, perCfg int, seed uint64) *WorkloadTrace {
	prof := videosim.NewProfiler(noiseStd, stats.NewRNG(seed))
	return trace.Record(sys, prof, perCfg)
}

// NewTraceReplayer builds a videosim.Measurer that replays a recorded
// trace; pass it via PaMOOptions.Measurer.
func NewTraceReplayer(t *WorkloadTrace) videosim.Measurer { return trace.NewReplayer(t) }

// CityBilling is a ready-made non-linear billing scheme (tiered energy,
// metered uplink, SLA revenue) for the given number of billed streams.
func CityBilling(streams int) Billing { return pricing.CityBilling(streams) }

// Virtualize splits heterogeneous physical servers into the homogeneous
// unit-capacity servers the scheduler works with (Section 3's note).
func Virtualize(phys []PhysicalServer) ([]Server, error) { return cluster.Virtualize(phys) }

// Classical fixed-weight preference definitions (the paper's reference
// [10]); see internal/exp.Pricing for the ablation against learned
// preferences.
var (
	// EqualWeights assigns every objective the same weight.
	EqualWeights = objective.EqualWeights
	// ROCWeights builds rank-order-centroid weights from a 1-based ranking.
	ROCWeights = objective.ROCWeights
	// RankSumWeights builds rank-sum weights from a 1-based ranking.
	RankSumWeights = objective.RankSumWeights
	// ParetoFront filters the non-dominated outcome vectors of a set.
	ParetoFront = objective.ParetoFront
)
